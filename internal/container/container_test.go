package container

import (
	"testing"

	"memdos/internal/attack"
	"memdos/internal/workload"
)

// lambdaSpec is a short Lambda-style invocation (2 s of work).
func lambdaSpec(t *testing.T) FunctionSpec {
	t.Helper()
	inv, err := workload.NewBuilder("thumbnailer", "THUMB").
		AccessRate(1.5e6).
		MissRatio(0.07).
		Noise(0.1).
		Runtime(2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return FunctionSpec{Name: "thumbnailer", Invocation: inv, ColdStart: 0.2, Concurrency: 4}
}

func TestFunctionSpecValidation(t *testing.T) {
	good := lambdaSpec(t)
	bad := []func(*FunctionSpec){
		func(f *FunctionSpec) { f.Name = "" },
		func(f *FunctionSpec) { f.Invocation.WorkSeconds = 0 },
		func(f *FunctionSpec) { f.Invocation.BaseAccessRate = 0 },
		func(f *FunctionSpec) { f.ColdStart = -1 },
		func(f *FunctionSpec) { f.Concurrency = 0 },
	}
	for i, mutate := range bad {
		f := good
		mutate(&f)
		if err := f.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformValidation(t *testing.T) {
	if _, err := NewPlatform(Config{}); err == nil {
		t.Error("zero config accepted")
	}
	p, err := NewPlatform(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AddAttacker(nil); err == nil {
		t.Error("nil attacker accepted")
	}
	badSpec := lambdaSpec(t)
	badSpec.Concurrency = 0
	if _, err := p.Deploy(badSpec); err == nil {
		t.Error("invalid function deployed")
	}
}

func TestInvocationChurn(t *testing.T) {
	p, _ := NewPlatform(DefaultConfig())
	f, err := p.Deploy(lambdaSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	p.RunUntil(60, nil)
	// 4 slots, ~2.2s per invocation cycle, 60s: ~108 completions.
	if got := f.Completed(); got < 80 || got > 130 {
		t.Errorf("completions = %d, want ~108", got)
	}
	// The per-function counter stream is continuous despite churn.
	if f.Counter().Samples() != 6000 {
		t.Errorf("samples = %d, want 6000", f.Counter().Samples())
	}
	if f.Counter().AccessSeries().Window(10, 60).Min() <= 0 {
		t.Error("aggregate stream has dead samples despite concurrency 4")
	}
}

func TestAttackCutsThroughput(t *testing.T) {
	run := func(withAttack bool) int {
		p, _ := NewPlatform(DefaultConfig())
		f, _ := p.Deploy(lambdaSpec(t))
		if withAttack {
			atk, _ := attack.NewBusLock(attack.Always{}, 0.7)
			p.AddAttacker(atk)
		}
		p.RunUntil(60, nil)
		return f.Completed()
	}
	clean, attacked := run(false), run(true)
	// Duty-0.7 bus locking should cut invocation throughput roughly 3x.
	if attacked >= clean/2 {
		t.Errorf("throughput %d -> %d under attack: insufficient impact", clean, attacked)
	}
}

func TestCleansingInflatesFunctionMisses(t *testing.T) {
	p, _ := NewPlatform(DefaultConfig())
	f, _ := p.Deploy(lambdaSpec(t))
	atk, _ := attack.NewLLCCleansing(attack.Window{Start: 30, End: 60}, 0.6, 2e6)
	p.AddAttacker(atk)
	p.RunUntil(60, nil)
	miss := f.Counter().MissSeries()
	before := miss.Window(5, 30).Mean()
	during := miss.Window(35, 60).Mean()
	if during < 2.5*before {
		t.Errorf("function MissNum %v -> %v: insufficient rise", before, during)
	}
}

func TestMeanSpeedReflectsAttack(t *testing.T) {
	p, _ := NewPlatform(DefaultConfig())
	f, _ := p.Deploy(lambdaSpec(t))
	atk, _ := attack.NewBusLock(attack.Window{Start: 30, End: 60}, 0.7)
	p.AddAttacker(atk)
	p.RunUntil(20, nil)
	if s := f.MeanSpeed(); s < 0.9 {
		t.Errorf("clean mean speed = %v", s)
	}
	p.RunUntil(50, nil)
	if s := f.MeanSpeed(); s > 0.5 {
		t.Errorf("attacked mean speed = %v", s)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() int {
		p, _ := NewPlatform(DefaultConfig())
		f, _ := p.Deploy(lambdaSpec(t))
		p.RunUntil(30, nil)
		return f.Completed()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed platforms diverged: %d vs %d", a, b)
	}
}

func TestInstanceTooShortToProfile(t *testing.T) {
	// The Section VIII point: a 2 s invocation yields only 200 samples —
	// exactly one W-sized MA window — so per-instance SDS/B profiling is
	// infeasible; the per-function aggregate (tested above) is the
	// workable observable.
	spec := lambdaSpec(t)
	samplesPerInstance := int(spec.Invocation.WorkSeconds / DefaultConfig().TPCM)
	const w = 200 // core.DefaultParams().W
	if samplesPerInstance > w {
		t.Fatalf("test premise broken: %d samples per instance (> W=%d)", samplesPerInstance, w)
	}
}
