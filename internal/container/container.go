// Package container models the container-based services the paper's future
// work targets (Section VIII: "memory DoS attacks in the container-based
// services and systems such as AWS Lambda and Kubernetes").
//
// The substrate differs from the VM testbed (internal/vmm) in the ways
// that matter for detection:
//
//   - density and churn: a host packs many short-lived function instances;
//     an instance often lives for seconds — far less than the W = 200
//     samples SDS/B needs to even compute one moving-average window, let
//     alone a profile;
//   - the observable unit is the *function*, not the instance: the
//     platform aggregates hardware counters per function across its
//     currently running instances, giving detectors a continuous stream
//     even though individual instances come and go;
//   - attacks hit everyone: the bus-locking and cleansing mechanics are
//     the same shared-hardware phenomena, applied through the same bus
//     model.
//
// The package reuses the workload models (one instance = one invocation)
// and the bus arbiter; see experiments.ContainerStudy for the detection
// results on this substrate.
package container

import (
	"fmt"

	"memdos/internal/attack"
	"memdos/internal/bus"
	"memdos/internal/pcm"
	"memdos/internal/sim"
	"memdos/internal/workload"
)

// FunctionSpec describes one deployed function (or container service).
type FunctionSpec struct {
	// Name identifies the function.
	Name string
	// Invocation is the per-instance behaviour; its WorkSeconds is the
	// invocation length (must be positive — instances are finite).
	Invocation workload.Spec
	// ColdStart is the gap in seconds between an instance finishing and
	// its replacement starting.
	ColdStart float64
	// Concurrency is how many instances run in parallel.
	Concurrency int
}

// Validate reports whether the spec is usable.
func (f FunctionSpec) Validate() error {
	if f.Name == "" {
		return fmt.Errorf("container: function needs a name")
	}
	if err := f.Invocation.Validate(); err != nil {
		return err
	}
	if f.Invocation.WorkSeconds <= 0 {
		return fmt.Errorf("container: function %s needs finite invocations (WorkSeconds > 0)", f.Name)
	}
	if f.ColdStart < 0 {
		return fmt.Errorf("container: function %s has negative cold start", f.Name)
	}
	if f.Concurrency <= 0 {
		return fmt.Errorf("container: function %s needs positive concurrency", f.Name)
	}
	return nil
}

// instanceSlot is one concurrency slot of a function: it runs an instance,
// and after the instance completes waits out the cold start before the
// next one spawns.
type instanceSlot struct {
	inst      *workload.Instance
	idleUntil float64
	lastSpeed float64
}

// Function is a deployed function with running instances and aggregated
// counters.
type Function struct {
	spec    FunctionSpec
	id      int
	slots   []*instanceSlot
	counter *pcm.Counter
	rng     *sim.RNG

	// Completed counts finished invocations (the throughput metric).
	completed int
}

// Name returns the function name.
func (f *Function) Name() string { return f.spec.Name }

// Completed returns the number of finished invocations so far.
func (f *Function) Completed() int { return f.completed }

// Counter returns the function's aggregated PCM counter.
func (f *Function) Counter() *pcm.Counter { return f.counter }

// MeanSpeed returns the mean execution speed of the currently running
// instances (1.0 = unimpeded; idle slots excluded, 1.0 if all idle).
func (f *Function) MeanSpeed() float64 {
	var sum float64
	n := 0
	for _, s := range f.slots {
		if s.inst != nil {
			sum += s.lastSpeed
			n++
		}
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// Config configures a Platform.
type Config struct {
	// TPCM is the counter sampling interval and simulation step.
	TPCM float64
	// MissPenalty converts excess miss ratio into stall (as in vmm).
	MissPenalty float64
	// Seed drives all randomness.
	Seed uint64
}

// DefaultConfig mirrors the VM testbed's parameters.
func DefaultConfig() Config {
	return Config{TPCM: 0.01, MissPenalty: 1.2, Seed: 1}
}

// Platform is one container host.
type Platform struct {
	cfg   Config
	clock *sim.Clock
	bus   *bus.Bus
	rng   *sim.RNG

	functions []*Function
	attackers []*attack.Attacker
}

// NewPlatform returns an empty host.
func NewPlatform(cfg Config) (*Platform, error) {
	if cfg.TPCM <= 0 {
		return nil, fmt.Errorf("container: non-positive TPCM %v", cfg.TPCM)
	}
	if cfg.MissPenalty < 0 {
		return nil, fmt.Errorf("container: negative miss penalty %v", cfg.MissPenalty)
	}
	return &Platform{
		cfg:   cfg,
		clock: sim.NewClock(cfg.TPCM),
		bus:   bus.New(0),
		rng:   sim.NewRNG(cfg.Seed),
	}, nil
}

// Deploy adds a function to the host.
func (p *Platform) Deploy(spec FunctionSpec) (*Function, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	f := &Function{
		spec:    spec,
		id:      len(p.functions),
		counter: pcm.MustNewCounter(spec.Name, p.cfg.TPCM, p.cfg.TPCM),
		rng:     p.rng.Split(),
	}
	for i := 0; i < spec.Concurrency; i++ {
		slot := &instanceSlot{lastSpeed: 1}
		slot.inst = spec.Invocation.MustNew(f.rng.Split())
		// Stagger the initial instances across the invocation cycle so
		// the slots don't complete (and cold-start) in lockstep — as on a
		// real platform, where requests arrive asynchronously.
		slot.inst.Advance(f.rng.Uniform(0, spec.Invocation.WorkSeconds), 1)
		f.slots = append(f.slots, slot)
	}
	p.functions = append(p.functions, f)
	return f, nil
}

// AddAttacker co-locates an attack container.
func (p *Platform) AddAttacker(a *attack.Attacker) error {
	if a == nil {
		return fmt.Errorf("container: nil attacker")
	}
	p.attackers = append(p.attackers, a)
	return nil
}

// Now returns the simulated time.
func (p *Platform) Now() float64 { return p.clock.Now() }

// StepResult carries the per-function samples completed during a step.
type StepResult struct {
	Time    float64
	Samples map[string]pcm.Sample
}

// attackerOwner is the bus owner id used for attack containers. The bus
// indexes owners densely from 0, so the attacker takes owner 0 and
// functions map to id+1 (see funcOwner).
const attackerOwner bus.Owner = 0

// funcOwner maps a function id to its bus owner.
func funcOwner(id int) bus.Owner { return bus.Owner(id + 1) }

// Step advances the host one tick.
func (p *Platform) Step() StepResult {
	now := p.clock.Now()
	dt := p.cfg.TPCM

	cleanse := 0.0
	for _, a := range p.attackers {
		if !a.Active(now) {
			continue
		}
		switch a.Kind() {
		case attack.BusLock:
			p.bus.RequestLock(attackerOwner, a.IntensityAt(now)*dt)
			p.bus.RequestAccesses(attackerOwner, a.AccessRate()*dt)
		case attack.LLCCleansing:
			if in := a.IntensityAt(now); in > cleanse {
				cleanse = in
			}
			p.bus.RequestAccesses(attackerOwner, a.AccessRate()*dt)
		}
	}

	type slotState struct {
		f         *Function
		slot      *instanceSlot
		requested float64
		miss      float64
		stall     float64
	}
	var states []slotState
	for _, f := range p.functions {
		for _, slot := range f.slots {
			if slot.inst == nil {
				if now >= slot.idleUntil {
					slot.inst = f.spec.Invocation.MustNew(f.rng.Split())
				} else {
					continue
				}
			}
			demand, m0 := slot.inst.Demand(dt)
			m := m0 + (1-m0)*cleanse
			stall := 1.0
			if excess := m - m0; excess > 0 {
				stall = 1 / (1 + p.cfg.MissPenalty*excess)
			}
			req := demand * stall
			p.bus.RequestAccesses(funcOwner(f.id), req)
			states = append(states, slotState{f: f, slot: slot, requested: req, miss: m, stall: stall})
		}
	}

	delivered := p.bus.Resolve(dt)
	// Per-function totals to apportion delivered bandwidth across slots.
	reqTotal := make(map[int]float64)
	for _, st := range states {
		reqTotal[st.f.id] += st.requested
	}

	accPerF := make(map[int]float64)
	missPerF := make(map[int]float64)
	for _, st := range states {
		share := 0.0
		if total := reqTotal[st.f.id]; total > 0 {
			share = st.requested / total * delivered.Of(funcOwner(st.f.id))
		}
		ratio := 1.0
		if st.requested > 0 {
			ratio = share / st.requested
		}
		speed := st.stall * ratio
		st.slot.lastSpeed = speed
		st.slot.inst.Advance(dt, speed)
		accPerF[st.f.id] += share
		missPerF[st.f.id] += share * st.miss
		if st.slot.inst.Done() {
			st.f.completed++
			st.slot.inst = nil
			st.slot.idleUntil = now + st.f.spec.ColdStart
		}
	}

	res := StepResult{Time: now + dt, Samples: make(map[string]pcm.Sample)}
	for _, f := range p.functions {
		if s, ok := f.counter.Observe(accPerF[f.id], missPerF[f.id]); ok {
			res.Samples[f.spec.Name] = s
		}
	}
	p.clock.Tick()
	return res
}

// RunUntil steps the host until simulated time t.
func (p *Platform) RunUntil(t float64, onStep func(StepResult)) {
	for p.clock.Now() < t {
		res := p.Step()
		if onStep != nil {
			onStep(res)
		}
	}
}
