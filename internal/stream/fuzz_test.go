package stream

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// FuzzDecodeIngest drives the network-facing ingest decoder: arbitrary
// bodies must never panic, and every accepted request must contain only
// validated, re-encodable samples.
func FuzzDecodeIngest(f *testing.F) {
	seeds := []string{
		`{"batches":[{"session":"vm-1","samples":[{"t":0.01,"access":120,"miss":8}]}]}`,
		`{"batches":[{"session":"vm-1","profile":"sdsb","samples":[{"t":1,"access":0,"miss":0}]}]}`,
		`{"batches":[]}`,
		`{"batches":[{"session":"","samples":[{"t":1,"access":1,"miss":1}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":-5,"miss":1}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":1e999,"miss":1}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":NaN,"access":1,"miss":1}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":1,"miss":1,"extra":2}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":1,"miss":1,"bw":6.4e7,"lat":3.2e-8}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":1,"miss":1,"bw":-1}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":1,"miss":1,"lat":1e999}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":1,"miss":1,"bw":NaN}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":1,"miss":1,"lat":0}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":1,"miss":1}]}]}trailing`,
		`{"unknown":true}`,
		`[]`, `null`, `"x"`, `{`, ``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeIngest(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(req.Batches) == 0 {
			t.Fatal("accepted request with no batches")
		}
		total := 0
		for _, b := range req.Batches {
			if validSessionID(b.Session) != nil {
				t.Fatalf("accepted bad session id %q", b.Session)
			}
			if len(b.Samples) == 0 {
				t.Fatal("accepted empty batch")
			}
			total += len(b.Samples)
			for _, s := range b.Samples {
				// Accepted samples must be finite and non-negative —
				// re-encoding must therefore succeed.
				if err := s.Validate(); err != nil {
					t.Fatalf("accepted invalid sample %+v: %v", s, err)
				}
				if _, err := json.Marshal(s); err != nil {
					t.Fatalf("accepted sample fails re-encoding: %v", err)
				}
			}
		}
		if total > MaxIngestSamples {
			t.Fatalf("accepted %d samples over the cap", total)
		}
		// Malformed JSON variants derived from accepted input must not
		// panic either.
		DecodeIngest(strings.NewReader(string(data) + "}"))
	})
}
