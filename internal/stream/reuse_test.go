package stream

import (
	"strings"
	"testing"

	"memdos/internal/core"
	"memdos/internal/pcm"
)

// TestDecodeIngestIntoReuse pins the stale-field hazard of recycling
// decode buffers: encoding/json leaves struct fields absent from the
// new document untouched, so a second decode into the same request
// must not inherit the first request's Session, Profile or Samples.
func TestDecodeIngestIntoReuse(t *testing.T) {
	req := AcquireIngestRequest()
	defer ReleaseIngestRequest(req)

	first := `{"batches":[
		{"session":"vm-a","profile":"sdsb:test","samples":[{"t":1,"access":1,"miss":1},{"t":2,"access":2,"miss":2},{"t":3,"access":3,"miss":3}]},
		{"session":"vm-b","profile":"raw","samples":[{"t":1,"access":9,"miss":9}]}]}`
	if err := DecodeIngestInto(req, strings.NewReader(first)); err != nil {
		t.Fatal(err)
	}
	if len(req.Batches) != 2 || req.Batches[0].Profile != "sdsb:test" || len(req.Batches[0].Samples) != 3 {
		t.Fatalf("first decode = %+v", req)
	}

	// Second request: one batch, no profile, one sample. Everything the
	// first decode left behind must be gone.
	second := `{"batches":[{"session":"vm-c","samples":[{"t":9,"access":7,"miss":5}]}]}`
	if err := DecodeIngestInto(req, strings.NewReader(second)); err != nil {
		t.Fatal(err)
	}
	if len(req.Batches) != 1 {
		t.Fatalf("second decode kept %d batches", len(req.Batches))
	}
	b := req.Batches[0]
	if b.Session != "vm-c" || b.Profile != "" {
		t.Fatalf("stale fields leaked into second decode: %+v", b)
	}
	if len(b.Samples) != 1 || (b.Samples[0] != pcm.Sample{Time: 9, AccessNum: 7, MissNum: 5}) {
		t.Fatalf("stale samples leaked into second decode: %+v", b.Samples)
	}

	// A decode error must not poison the request for the next use.
	if err := DecodeIngestInto(req, strings.NewReader(`{"bogus"`)); err == nil {
		t.Fatal("malformed request accepted")
	}
	if err := DecodeIngestInto(req, strings.NewReader(second)); err != nil {
		t.Fatalf("decode after error: %v", err)
	}
	if len(req.Batches) != 1 || req.Batches[0].Session != "vm-c" {
		t.Fatalf("decode after error = %+v", req)
	}
}

// TestDecodeIngestIntoReusesCapacity: the whole point of the pool — a
// second same-shaped decode must not grow fresh batch/sample arrays.
func TestDecodeIngestIntoReusesCapacity(t *testing.T) {
	req := AcquireIngestRequest()
	defer ReleaseIngestRequest(req)
	body := `{"batches":[{"session":"vm-a","samples":[{"t":1,"access":1,"miss":1},{"t":2,"access":2,"miss":2}]}]}`
	if err := DecodeIngestInto(req, strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	firstBatch := &req.Batches[0]
	firstSamples := &firstBatch.Samples[0]
	if err := DecodeIngestInto(req, strings.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	if &req.Batches[0] != firstBatch {
		t.Error("second decode reallocated the batch slice")
	}
	if &req.Batches[0].Samples[0] != firstSamples {
		t.Error("second decode reallocated the sample slice")
	}
}

// TestIngestCopiesBatch: Hub.Ingest's contract says the caller may
// reuse its slice immediately. With the pooled submit path the copy
// happens into a recycled buffer — corrupting the caller's slice right
// after Ingest must not corrupt what the detector sees.
func TestIngestCopiesBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Block
	cfg.RecordDecisions = true
	h := NewHub(cfg)
	defer h.Close()
	if err := h.RegisterProfile("raw", func() (core.Detector, error) {
		return core.NewRawThreshold(0.5)
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.Open("vm-1", "raw"); err != nil {
		t.Fatal(err)
	}

	batch := make([]pcm.Sample, 64)
	for round := 0; round < 50; round++ {
		for i := range batch {
			batch[i] = pcm.Sample{
				Time:      float64(round*len(batch)+i+1) * 0.01,
				AccessNum: 100,
				MissNum:   10,
			}
		}
		if _, err := h.Ingest("vm-1", batch); err != nil {
			t.Fatal(err)
		}
		// Stomp the caller's slice while the batch may still be queued.
		for i := range batch {
			batch[i] = pcm.Sample{Time: -1, AccessNum: 1e12, MissNum: 1e12}
		}
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	decisions := h.Decisions("vm-1")
	// RawThreshold emits no decision for its very first sample (it needs
	// a predecessor), so a contiguous stream yields samples-1 decisions.
	if len(decisions) != 50*64-1 {
		t.Fatalf("%d decisions, want %d", len(decisions), 50*64-1)
	}
	for i, d := range decisions {
		// The stomped values would flip the raw-threshold detector's
		// miss ratio to 1.0 and alarm; the real batch never alarms.
		if d.Alarm {
			t.Fatalf("decision %d alarmed: detector saw the stomped batch", i)
		}
		if want := float64(i+2) * 0.01; d.Time != want {
			t.Fatalf("decision %d at t=%v, want %v", i, d.Time, want)
		}
	}
}
