package stream

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"memdos/internal/pcm"
)

// Wire types of the memdosd ingestion API (POST /v1/ingest). The decoder
// is deliberately strict — it faces the network: unknown fields, partial
// samples, non-finite counters, oversized payloads and trailing garbage
// are all errors, never panics (FuzzDecodeIngest enforces this).
//
// # Alarm delivery guarantee
//
// Subscribe delivers AlarmEvents best-effort: the hub publishes each
// alarm transition (raise or clear, never intermediate decisions) to
// every subscriber's buffered channel without ever blocking the
// detection path. A subscriber that falls behind its buffer loses the
// event — silently from the channel's point of view, but never
// invisibly: every shed event increments the
// memdos_stream_subscriber_dropped_total counter (HubStats.
// SubscriberDropped). Within one session, events that are delivered
// arrive in order; a dropped event therefore means a consumer may miss
// a raise or a clear, never see them reordered. Consumers that need
// exactness must either size their buffer for the worst-case burst
// (sessions × 2 transitions covers any instant) or reconcile against
// SessionInfo.AlarmActive, which is always current. The respond engine
// does the latter implicitly: a missed raise is recovered by its
// sustained-alarm tick rule, a missed clear by the next transition.

// Decode limits: a request may not exceed MaxIngestBytes on the wire or
// MaxIngestSamples decoded samples across all batches.
const (
	MaxIngestBytes   = 8 << 20
	MaxIngestSamples = 1 << 17
)

// IngestBatch carries consecutive samples of one session's PCM stream.
type IngestBatch struct {
	Session string `json:"session"`
	// Profile optionally asks the daemon to auto-open the session with
	// this detector profile on first contact.
	Profile string       `json:"profile,omitempty"`
	Samples []pcm.Sample `json:"samples"`
}

// IngestRequest is the body of POST /v1/ingest.
type IngestRequest struct {
	Batches []IngestBatch `json:"batches"`
}

// IngestResponse reports the per-request outcome.
type IngestResponse struct {
	// Accepted and Dropped count samples over all batches; Dropped are
	// shed by the queue policy (the request itself still succeeds).
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
	// Errors lists per-batch failures (unknown session, bad profile);
	// other batches are still applied.
	Errors []string `json:"errors,omitempty"`
}

// ingestReqPool recycles decoded requests — and, transitively, their
// batch and sample slices — across DecodeIngestInto calls, so a daemon
// ingesting at high rate does not allocate a fresh batch slice per
// request (the JSON route's analogue of the binary path's reused
// buffers).
var ingestReqPool = sync.Pool{New: func() any { return new(IngestRequest) }}

// AcquireIngestRequest returns a recycled request for DecodeIngestInto.
// Pass it to ReleaseIngestRequest when the batches are no longer
// referenced (the hub copies samples on Ingest, so right after the
// ingest loop is safe).
func AcquireIngestRequest() *IngestRequest {
	return ingestReqPool.Get().(*IngestRequest)
}

// ReleaseIngestRequest recycles req. Oversized requests are dropped
// instead of pooled so one huge body cannot pin its memory forever.
func ReleaseIngestRequest(req *IngestRequest) {
	if cap(req.Batches) > 1024 {
		return
	}
	keep := true
	for i := range req.Batches {
		if cap(req.Batches[i].Samples) > MaxIngestSamples/8 {
			keep = false
			break
		}
	}
	if keep {
		ingestReqPool.Put(req)
	}
}

// resetIngestRequest clears every element the next decode could reuse.
// encoding/json appends into the existing backing array, reusing the
// structs (and their Samples capacity) that live there — but it leaves
// fields absent from the new document untouched, so a stale Session or
// Profile from the previous request would silently leak into this one
// unless wiped first.
func resetIngestRequest(req *IngestRequest) {
	batches := req.Batches[:cap(req.Batches)]
	for i := range batches {
		batches[i].Session = ""
		batches[i].Profile = ""
		batches[i].Samples = batches[i].Samples[:0]
	}
	req.Batches = req.Batches[:0]
}

// DecodeIngest parses and validates an ingest request body into a
// freshly allocated request. Hot paths should prefer
// AcquireIngestRequest + DecodeIngestInto + ReleaseIngestRequest.
func DecodeIngest(r io.Reader) (*IngestRequest, error) {
	req := new(IngestRequest)
	if err := DecodeIngestInto(req, r); err != nil {
		return nil, err
	}
	return req, nil
}

// DecodeIngestInto parses and validates an ingest request body into
// req, reusing whatever batch and sample capacity req already carries.
//
//memdos:hotpath
func DecodeIngestInto(req *IngestRequest, r io.Reader) error {
	resetIngestRequest(req)
	dec := json.NewDecoder(io.LimitReader(r, MaxIngestBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(req); err != nil {
		return fmt.Errorf("stream: bad ingest request: %w", err)
	}
	// A second value (or any trailing token) means the body was not one
	// JSON document.
	if dec.More() {
		return fmt.Errorf("stream: trailing data after ingest request")
	}
	if len(req.Batches) == 0 {
		return fmt.Errorf("stream: ingest request has no batches")
	}
	total := 0
	for i := range req.Batches {
		b := &req.Batches[i]
		if err := validSessionID(b.Session); err != nil {
			return fmt.Errorf("stream: batch %d: %w", i, err)
		}
		if len(b.Samples) == 0 {
			return fmt.Errorf("stream: batch %d (%s) has no samples", i, b.Session)
		}
		total += len(b.Samples)
		if total > MaxIngestSamples {
			return fmt.Errorf("stream: ingest request exceeds %d samples", MaxIngestSamples)
		}
	}
	return nil
}
