package stream

import (
	"encoding/json"
	"fmt"
	"io"

	"memdos/internal/pcm"
)

// Wire types of the memdosd ingestion API (POST /v1/ingest). The decoder
// is deliberately strict — it faces the network: unknown fields, partial
// samples, non-finite counters, oversized payloads and trailing garbage
// are all errors, never panics (FuzzDecodeIngest enforces this).
//
// # Alarm delivery guarantee
//
// Subscribe delivers AlarmEvents best-effort: the hub publishes each
// alarm transition (raise or clear, never intermediate decisions) to
// every subscriber's buffered channel without ever blocking the
// detection path. A subscriber that falls behind its buffer loses the
// event — silently from the channel's point of view, but never
// invisibly: every shed event increments the
// memdos_stream_subscriber_dropped_total counter (HubStats.
// SubscriberDropped). Within one session, events that are delivered
// arrive in order; a dropped event therefore means a consumer may miss
// a raise or a clear, never see them reordered. Consumers that need
// exactness must either size their buffer for the worst-case burst
// (sessions × 2 transitions covers any instant) or reconcile against
// SessionInfo.AlarmActive, which is always current. The respond engine
// does the latter implicitly: a missed raise is recovered by its
// sustained-alarm tick rule, a missed clear by the next transition.

// Decode limits: a request may not exceed MaxIngestBytes on the wire or
// MaxIngestSamples decoded samples across all batches.
const (
	MaxIngestBytes   = 8 << 20
	MaxIngestSamples = 1 << 17
)

// IngestBatch carries consecutive samples of one session's PCM stream.
type IngestBatch struct {
	Session string `json:"session"`
	// Profile optionally asks the daemon to auto-open the session with
	// this detector profile on first contact.
	Profile string       `json:"profile,omitempty"`
	Samples []pcm.Sample `json:"samples"`
}

// IngestRequest is the body of POST /v1/ingest.
type IngestRequest struct {
	Batches []IngestBatch `json:"batches"`
}

// IngestResponse reports the per-request outcome.
type IngestResponse struct {
	// Accepted and Dropped count samples over all batches; Dropped are
	// shed by the queue policy (the request itself still succeeds).
	Accepted int `json:"accepted"`
	Dropped  int `json:"dropped"`
	// Errors lists per-batch failures (unknown session, bad profile);
	// other batches are still applied.
	Errors []string `json:"errors,omitempty"`
}

// DecodeIngest parses and validates an ingest request body.
func DecodeIngest(r io.Reader) (*IngestRequest, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxIngestBytes+1))
	dec.DisallowUnknownFields()
	var req IngestRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("stream: bad ingest request: %w", err)
	}
	// A second value (or any trailing token) means the body was not one
	// JSON document.
	if dec.More() {
		return nil, fmt.Errorf("stream: trailing data after ingest request")
	}
	if len(req.Batches) == 0 {
		return nil, fmt.Errorf("stream: ingest request has no batches")
	}
	total := 0
	for i := range req.Batches {
		b := &req.Batches[i]
		if err := validSessionID(b.Session); err != nil {
			return nil, fmt.Errorf("stream: batch %d: %w", i, err)
		}
		if len(b.Samples) == 0 {
			return nil, fmt.Errorf("stream: batch %d (%s) has no samples", i, b.Session)
		}
		total += len(b.Samples)
		if total > MaxIngestSamples {
			return nil, fmt.Errorf("stream: ingest request exceeds %d samples", MaxIngestSamples)
		}
	}
	return &req, nil
}
