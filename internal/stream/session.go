package stream

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"memdos/internal/core"
	"memdos/internal/pcm"
)

// numShards is the default shard count: one worker per CPU.
func numShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	return n
}

// AlarmEvent is one alarm transition of one session, delivered to
// subscribers: Raised true when the detector's alarm goes up, false when
// it clears. Time is the triggering decision's (simulated) timestamp.
type AlarmEvent struct {
	Session  string  `json:"session"`
	Detector string  `json:"detector"`
	Time     float64 `json:"t"`
	Raised   bool    `json:"raised"`
}

// SessionInfo is a point-in-time view of one detection session.
type SessionInfo struct {
	ID       string `json:"id"`
	Profile  string `json:"profile"`
	Detector string `json:"detector"`
	Shard    int    `json:"shard"`

	Ingested  uint64 `json:"ingested"`
	Dropped   uint64 `json:"dropped"`
	Pending   int64  `json:"pending"`
	Decisions uint64 `json:"decisions"`
	// OutOfOrder counts decisions whose timestamp ran backwards (a
	// producer replaying history); they still count as decisions but are
	// excluded from incident folding.
	OutOfOrder uint64 `json:"outOfOrder"`

	AlarmActive  bool           `json:"alarmActive"`
	AlarmsRaised uint64         `json:"alarmsRaised"`
	LastDecision *core.Decision `json:"lastDecision,omitempty"`
	// Cascade is the most recent batched-inference verdict (nil until the
	// hub's scoring service has scored a window of this session).
	Cascade *CascadeVerdict `json:"cascade,omitempty"`
	// Incidents are the session's alarm episodes, flap-merged with the
	// hub's MergeGap.
	Incidents []core.Incident `json:"incidents,omitempty"`
	// State is the detector's state snapshot (nil for detectors without
	// Snapshotter support).
	State map[string]float64 `json:"state,omitempty"`
}

// Session is one protected VM's always-on detection pipeline. All
// detector and tracker mutation happens on the session's shard
// goroutine; mu only guards inspection against that single writer.
type Session struct {
	hub     *Hub
	id      string
	profile string
	det     core.Detector
	shard   *shard

	// queue accounting. pending is the number of accepted samples not
	// yet processed; qmu/cond implement the Block policy.
	pending atomic.Int64
	qmu     sync.Mutex
	cond    *sync.Cond
	removed atomic.Bool

	ingested atomic.Uint64
	dropped  atomic.Uint64

	// mu guards everything below (shard goroutine writes, info reads).
	mu sync.Mutex
	// tracker, decisions, outOfOrder, alarmsRaised, alarmActive,
	// lastDecision, hasDecision, recorded and sealed are all
	// guarded by mu.
	tracker      incidentTracker
	decisions    uint64
	outOfOrder   uint64
	alarmsRaised uint64
	alarmActive  bool
	lastDecision core.Decision
	hasDecision  bool
	recorded     []core.Decision
	sealed       bool

	// scoreWin assembles the session's sliding cascade window (written on
	// the shard goroutine); cascade/cascadeWindows hold the latest verdict
	// (written by the scorer goroutine). All guarded by mu.
	scoreWin       []float64
	cascade        CascadeVerdict
	cascadeWindows uint64
}

func newSession(h *Hub, id, profile string, det core.Detector, sh *shard) *Session {
	s := &Session{hub: h, id: id, profile: profile, det: det, shard: sh}
	s.cond = sync.NewCond(&s.qmu)
	return s
}

// enqueue applies the queue policy and hands the batch to the shard.
func (s *Session) enqueue(samples []pcm.Sample) (int, error) {
	n := int64(len(samples))
	cap64 := int64(s.hub.cfg.QueueCap)
	switch s.hub.cfg.Policy {
	case Block:
		s.qmu.Lock()
		for s.pending.Load()+n > cap64 && !s.hub.closing.Load() && !s.removed.Load() {
			s.cond.Wait()
		}
		if s.hub.closing.Load() {
			s.qmu.Unlock()
			return 0, ErrClosed
		}
		if s.removed.Load() {
			s.qmu.Unlock()
			return 0, errRemoved(s.id)
		}
		s.pending.Add(n)
		s.qmu.Unlock()
		s.shard.pending.Add(n)
		s.shard.work <- work{sess: s, batch: s.hub.getBatch(samples)}
	default: // DropNewest
		if s.pending.Load()+n > cap64 {
			s.drop(n)
			return 0, nil
		}
		s.pending.Add(n)
		s.shard.pending.Add(n)
		batch := s.hub.getBatch(samples)
		select {
		case s.shard.work <- work{sess: s, batch: batch}:
		default:
			s.hub.putBatch(batch)
			s.pending.Add(-n)
			s.shard.pending.Add(-n)
			s.drop(n)
			return 0, nil
		}
	}
	s.ingested.Add(uint64(n))
	s.hub.samplesIngested.Add(uint64(n))
	return len(samples), nil
}

func (s *Session) drop(n int64) {
	s.dropped.Add(uint64(n))
	s.hub.samplesDropped.Add(uint64(n))
}

// finishBatch is called by the shard goroutine after processing a batch.
func (s *Session) finishBatch(n int64) {
	s.pending.Add(-n)
	s.qmu.Lock()
	s.cond.Broadcast()
	s.qmu.Unlock()
}

// wake releases Block-policy waiters (hub close / session removal).
func (s *Session) wake() {
	s.qmu.Lock()
	s.cond.Broadcast()
	s.qmu.Unlock()
}

func (s *Session) remove() {
	s.removed.Store(true)
	s.wake()
}

// process runs the batch through the detector. It executes only on the
// session's shard goroutine — the detector is single-writer by
// construction; mu is held so info() observes consistent state.
func (s *Session) process(batch []pcm.Sample) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sc := s.hub.scorer.Load()
	for _, smp := range batch {
		for _, d := range s.det.Push(smp) {
			s.foldLocked(d)
		}
		if sc != nil {
			s.pushSampleLocked(sc, smp)
		}
	}
}

// foldLocked absorbs one decision: counters, incident tracking, alarm
// transition fan-out. Caller holds s.mu.
func (s *Session) foldLocked(d core.Decision) {
	s.decisions++
	s.hub.decisionsTotal.Inc()
	if s.hub.cfg.RecordDecisions {
		s.recorded = append(s.recorded, d)
	}
	if !s.tracker.observe(d) {
		s.outOfOrder++
		return
	}
	prev := s.alarmActive
	s.alarmActive = d.Alarm
	s.lastDecision = d
	s.hasDecision = true
	if d.Alarm != prev {
		if d.Alarm {
			s.alarmsRaised++
			s.hub.alarmsRaised.Inc()
		}
		s.hub.publish(AlarmEvent{Session: s.id, Detector: s.det.Name(), Time: d.Time, Raised: d.Alarm})
	}
}

// seal marks the session log final after hub shutdown has drained the
// queues; any still-open incident stays flagged Open — truthfully "still
// alarming when the stream ended".
func (s *Session) seal() {
	s.mu.Lock()
	s.sealed = true
	s.mu.Unlock()
}

// info snapshots the session.
func (s *Session) info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	in := SessionInfo{
		ID:           s.id,
		Profile:      s.profile,
		Detector:     s.det.Name(),
		Shard:        s.shard.id,
		Ingested:     s.ingested.Load(),
		Dropped:      s.dropped.Load(),
		Pending:      s.pending.Load(),
		Decisions:    s.decisions,
		OutOfOrder:   s.outOfOrder,
		AlarmActive:  s.alarmActive,
		AlarmsRaised: s.alarmsRaised,
		Incidents:    s.tracker.merged(s.hub.cfg.MergeGap),
		State:        core.SnapshotDetector(s.det),
	}
	if s.hasDecision {
		d := s.lastDecision
		in.LastDecision = &d
	}
	if s.cascadeWindows > 0 {
		v := s.cascade
		in.Cascade = &v
	}
	return in
}

func (s *Session) recordedDecisions() []core.Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]core.Decision(nil), s.recorded...)
}

func errRemoved(id string) error { return fmt.Errorf("stream: session %q closed", id) }

// incidentTracker folds decisions into alarm episodes one at a time,
// with semantics identical to core.Incidents over the same stream (see
// TestTrackerMatchesBatchIncidents). Out-of-order decisions — which
// core.Incidents rejects wholesale — are skipped and reported so a live
// session survives a misbehaving producer.
type incidentTracker struct {
	incidents []core.Incident
	open      bool
	last      float64
	started   bool
}

// observe folds one decision and reports whether it was in order.
func (t *incidentTracker) observe(d core.Decision) bool {
	if t.started && d.Time < t.last {
		return false
	}
	t.started = true
	t.last = d.Time
	switch {
	case d.Alarm && !t.open:
		t.incidents = append(t.incidents, core.Incident{Start: d.Time, End: d.Time, Open: true})
		t.open = true
	case d.Alarm && t.open:
		t.incidents[len(t.incidents)-1].End = d.Time
	case !d.Alarm && t.open:
		t.incidents[len(t.incidents)-1].End = d.Time
		t.incidents[len(t.incidents)-1].Open = false
		t.open = false
	}
	return true
}

// episodes returns a copy of the raw (unmerged) incident log.
func (t *incidentTracker) episodes() []core.Incident {
	return append([]core.Incident(nil), t.incidents...)
}

// merged returns the incident log with flaps up to maxGap joined.
func (t *incidentTracker) merged(maxGap float64) []core.Incident {
	return core.MergeIncidents(t.episodes(), maxGap)
}
