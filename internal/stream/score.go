package stream

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"memdos/internal/pcm"
)

// The scoring service: batched cascade inference over live session
// windows.
//
// Shard goroutines assemble each session's counter samples into sliding
// [window][2] matrices (access count, miss count — the cascade's input
// channels). Completed windows enter a bounded scoring queue;
// overflowing windows are dropped and counted, never blocking a shard.
// Two goroutines drain the queue through a pair of reusable batch
// buffers: the assembler stages windows into one buffer while the
// scorer runs the fused batch kernel over the other, so staging and
// GEMM time overlap. Verdicts are written back onto the sessions and
// surface in SessionInfo (and the /v1/sessions API) next to the
// detector state.

// WindowScorer is the batched inference engine the hub drives: one call
// classifies n windows, given row-major [n][window][2] counter values.
// internal/dnn's BatchScorer satisfies this shape via a thin adapter
// (the hub cannot import dnn — the daemon wires the two together).
type WindowScorer interface {
	// Window is the window length the scorer was compiled for.
	Window() int
	// ScoreFlat fills apps[i] and attacks[i] with the cascade verdict of
	// window i. len(flat) == n*Window()*2; apps and attacks have length n.
	ScoreFlat(n int, flat []float64, apps, attacks []int)
}

// AttackNamer optionally maps attack-class indices to stable names for
// API responses. Implemented by the daemon's scorer adapter.
type AttackNamer interface {
	AttackName(class int) string
}

// CascadeVerdict is the most recent batched-inference result for one
// session.
type CascadeVerdict struct {
	// App is the application-identification stage's class index.
	App int `json:"app"`
	// AttackClass is the attack-classification stage's class index.
	AttackClass int `json:"attackClass"`
	// Attack is AttackClass's name when the scorer can name it.
	Attack string `json:"attack,omitempty"`
	// Time is the timestamp of the scored window's last sample.
	Time float64 `json:"t"`
	// Windows counts how many of this session's windows have been scored.
	Windows uint64 `json:"windows"`
}

// ScorerConfig sizes the scoring service.
type ScorerConfig struct {
	// Stride is how many samples advance between consecutive windows of
	// one session. <= 0 means the window length (non-overlapping).
	Stride int
	// Batch is the largest number of windows fused into one scorer call.
	// <= 0 means 64.
	Batch int
	// QueueCap bounds windows waiting to be batched. <= 0 means 1024.
	QueueCap int
}

func (c ScorerConfig) withDefaults(window int) (ScorerConfig, error) {
	if c.Stride <= 0 {
		c.Stride = window
	}
	if c.Stride > window {
		return c, fmt.Errorf("stream: scorer stride %d exceeds window %d", c.Stride, window)
	}
	if c.Batch <= 0 {
		c.Batch = 64
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 1024
	}
	return c, nil
}

// scoreItem is one queue entry: a completed window, or a flush barrier.
type scoreItem struct {
	sess  *Session
	buf   *[]float64 // pooled [window*2] copy
	t     float64    // last sample's timestamp
	flush chan<- struct{}
}

// scoreBatch is one of the two ping-pong staging buffers.
type scoreBatch struct {
	sess    []*Session
	times   []float64
	flat    []float64
	apps    []int
	attacks []int
	flush   []chan<- struct{}
}

func (b *scoreBatch) reset() {
	b.sess = b.sess[:0]
	b.times = b.times[:0]
	b.flat = b.flat[:0]
	b.flush = b.flush[:0]
}

// hubScorer runs the scoring service for one hub.
type hubScorer struct {
	ws     WindowScorer
	window int
	stride int
	batch  int

	queue   chan scoreItem
	free    chan *scoreBatch // double buffer: assembler <- scorer
	ready   chan *scoreBatch // double buffer: assembler -> scorer
	done    chan struct{}    // scorer goroutine exited
	bufPool sync.Pool        // *[]float64 window copies

	queueLen       atomic.Int64
	windowsScored  atomic.Uint64
	windowsDropped atomic.Uint64
	batchesScored  atomic.Uint64
	scoreNanos     atomic.Int64
}

// AttachScorer starts the batched scoring service on the hub. At most
// one scorer can be attached, before or after sessions open; windows
// only accumulate from samples ingested after the attach.
func (h *Hub) AttachScorer(ws WindowScorer, cfg ScorerConfig) error {
	if ws == nil {
		return fmt.Errorf("stream: nil scorer")
	}
	w := ws.Window()
	if w <= 0 {
		return fmt.Errorf("stream: scorer window must be positive, got %d", w)
	}
	cfg, err := cfg.withDefaults(w)
	if err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	sc := &hubScorer{
		ws:     ws,
		window: w,
		stride: cfg.Stride,
		batch:  cfg.Batch,
		queue:  make(chan scoreItem, cfg.QueueCap),
		free:   make(chan *scoreBatch, 2),
		ready:  make(chan *scoreBatch, 2),
		done:   make(chan struct{}),
	}
	for i := 0; i < 2; i++ {
		sc.free <- &scoreBatch{
			sess:    make([]*Session, 0, cfg.Batch),
			times:   make([]float64, 0, cfg.Batch),
			flat:    make([]float64, 0, cfg.Batch*w*2),
			apps:    make([]int, cfg.Batch),
			attacks: make([]int, cfg.Batch),
		}
	}
	if !h.scorer.CompareAndSwap(nil, sc) {
		return fmt.Errorf("stream: scorer already attached")
	}
	go sc.runAssembler()
	go sc.runScorer()
	return nil
}

// ScorerStats is a programmatic snapshot of the scoring service.
type ScorerStats struct {
	Attached       bool
	Window         int
	Stride         int
	Batch          int
	QueueDepth     int64
	WindowsScored  uint64
	WindowsDropped uint64
	BatchesScored  uint64
	ScoreSeconds   float64
}

// ScorerStats snapshots the scoring-service counters.
func (h *Hub) ScorerStats() ScorerStats {
	sc := h.scorer.Load()
	if sc == nil {
		return ScorerStats{}
	}
	return ScorerStats{
		Attached:       true,
		Window:         sc.window,
		Stride:         sc.stride,
		Batch:          sc.batch,
		QueueDepth:     sc.queueLen.Load(),
		WindowsScored:  sc.windowsScored.Load(),
		WindowsDropped: sc.windowsDropped.Load(),
		BatchesScored:  sc.batchesScored.Load(),
		ScoreSeconds:   float64(sc.scoreNanos.Load()) / 1e9,
	}
}

func (sc *hubScorer) getBuf() *[]float64 {
	b, _ := sc.bufPool.Get().(*[]float64)
	if b == nil {
		s := make([]float64, sc.window*2) // pool miss only; the steady window rate recycles buffers through bufPool
		b = &s
	}
	return b
}

// pushSampleLocked advances one session's sliding window by one sample
// and emits a completed window into the scoring queue. Runs on the shard
// goroutine under s.mu, so the per-session assembly state has a single
// writer. A full queue sheds the window (counted), never stalling the
// shard.
func (s *Session) pushSampleLocked(sc *hubScorer, smp pcm.Sample) {
	w2 := sc.window * 2
	if cap(s.scoreWin) < w2 {
		// Grow-once per session: the first sample after scorer attach sizes
		// the window buffer for the session's lifetime.
		s.scoreWin = make([]float64, 0, w2)
	}
	s.scoreWin = append(s.scoreWin, smp.AccessNum, smp.MissNum)
	if len(s.scoreWin) < w2 {
		return
	}
	buf := sc.getBuf()
	copy(*buf, s.scoreWin)
	select {
	case sc.queue <- scoreItem{sess: s, buf: buf, t: smp.Time}:
		sc.queueLen.Add(1)
	default:
		sc.windowsDropped.Add(1)
		sc.bufPool.Put(buf)
	}
	// Slide: keep the window's tail for the next overlapping emission.
	keep := w2 - sc.stride*2
	copy(s.scoreWin, s.scoreWin[sc.stride*2:])
	s.scoreWin = s.scoreWin[:keep]
}

// runAssembler drains the scoring queue into the free staging buffer:
// block for the first window of a round, then take whatever else is
// already queued (up to the batch cap) without waiting, so batches grow
// under load and stay prompt when idle.
func (sc *hubScorer) runAssembler() {
	b := <-sc.free
	ship := func() {
		sc.ready <- b
		b = <-sc.free
	}
	for it := range sc.queue {
		flushing := sc.absorb(b, it)
		for !flushing && len(b.sess) < sc.batch {
			select {
			case it2, ok := <-sc.queue:
				if !ok {
					goto drained
				}
				flushing = sc.absorb(b, it2)
			default:
				goto roundDone
			}
		}
	roundDone:
		if len(b.sess) > 0 || len(b.flush) > 0 {
			ship()
		}
	}
drained:
	if len(b.sess) > 0 || len(b.flush) > 0 {
		sc.ready <- b
	}
	close(sc.ready)
}

// absorb folds one queue item into the staging buffer and reports
// whether it was a flush barrier (which must ship immediately).
func (sc *hubScorer) absorb(b *scoreBatch, it scoreItem) bool {
	sc.queueLen.Add(-1)
	if it.flush != nil {
		b.flush = append(b.flush, it.flush)
		return true
	}
	b.sess = append(b.sess, it.sess)
	b.times = append(b.times, it.t)
	b.flat = append(b.flat, *it.buf...)
	sc.bufPool.Put(it.buf)
	return false
}

// runScorer scores staged batches and writes verdicts back onto the
// sessions.
func (sc *hubScorer) runScorer() {
	defer close(sc.done)
	namer, _ := sc.ws.(AttackNamer)
	for b := range sc.ready {
		if n := len(b.sess); n > 0 {
			start := time.Now()
			sc.ws.ScoreFlat(n, b.flat, b.apps[:n], b.attacks[:n])
			sc.scoreNanos.Add(time.Since(start).Nanoseconds())
			sc.batchesScored.Add(1)
			sc.windowsScored.Add(uint64(n))
			for i, s := range b.sess {
				v := CascadeVerdict{
					App:         b.apps[i],
					AttackClass: b.attacks[i],
					Time:        b.times[i],
				}
				if namer != nil {
					v.Attack = namer.AttackName(v.AttackClass)
				}
				s.mu.Lock()
				v.Windows = s.cascadeWindows + 1
				s.cascadeWindows = v.Windows
				s.cascade = v
				s.mu.Unlock()
			}
		}
		for _, ch := range b.flush {
			ch <- struct{}{}
		}
		b.reset()
		sc.free <- b
	}
}

// flushScorer is Drain's scoring barrier: every window enqueued before
// the call is scored before it returns. Callers must hold the hub's
// ingestWG (as Drain does) so Close cannot tear the queue down
// concurrently.
func (sc *hubScorer) flushScorer() {
	ack := make(chan struct{})
	sc.queue <- scoreItem{flush: ack}
	sc.queueLen.Add(1)
	<-ack
}

// closeScorer stops the service after the shard goroutines have exited
// (no further enqueues): queued windows are still scored, then both
// goroutines wind down.
func (sc *hubScorer) closeScorer() {
	close(sc.queue)
	<-sc.done
}
