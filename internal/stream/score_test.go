package stream

import (
	"fmt"
	"sync"
	"testing"

	"memdos/internal/core"
	"memdos/internal/pcm"
)

// stubScorer records every fused call and returns fixed verdicts. An
// optional gate makes ScoreFlat block until fed, to force queue
// build-up in the shed/fusion tests.
type stubScorer struct {
	window int
	gate   chan struct{}

	mu    sync.Mutex
	calls [][]float64 // flat input of each call
	ns    []int       // batch size of each call
}

func (s *stubScorer) Window() int { return s.window }

func (s *stubScorer) ScoreFlat(n int, flat []float64, apps, attacks []int) {
	if s.gate != nil {
		<-s.gate
	}
	s.mu.Lock()
	s.calls = append(s.calls, append([]float64(nil), flat[:n*s.window*2]...))
	s.ns = append(s.ns, n)
	s.mu.Unlock()
	for i := 0; i < n; i++ {
		apps[i] = 1
		attacks[i] = 2
	}
}

func (s *stubScorer) AttackName(class int) string { return fmt.Sprintf("atk%d", class) }

func (s *stubScorer) batchSizes() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]int(nil), s.ns...)
}

func scoringHub(t *testing.T) *Hub {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.Policy = Block
	h := NewHub(cfg)
	t.Cleanup(func() { h.Close() })
	if err := h.RegisterProfile("raw", func() (core.Detector, error) {
		return core.NewRawThreshold(0.5)
	}); err != nil {
		t.Fatal(err)
	}
	return h
}

func ingestCounters(t *testing.T, h *Hub, id string, from, n int) {
	t.Helper()
	samples := make([]pcm.Sample, n)
	for i := range samples {
		k := from + i
		samples[i] = pcm.Sample{Time: float64(k), AccessNum: float64(k), MissNum: 100 + float64(k)}
	}
	if _, err := h.Ingest(id, samples); err != nil {
		t.Fatal(err)
	}
}

// Sliding windows must come out of the assembler with exactly the
// configured stride and the raw counter values, Drain must be a scoring
// barrier, and the verdict must land in SessionInfo with the namer's
// attack label.
func TestScoringServiceVerdicts(t *testing.T) {
	h := scoringHub(t)
	ss := &stubScorer{window: 4}
	if err := h.AttachScorer(ss, ScorerConfig{Stride: 2}); err != nil {
		t.Fatal(err)
	}
	if err := h.Open("vm-a", "raw"); err != nil {
		t.Fatal(err)
	}
	ingestCounters(t, h, "vm-a", 1, 10)
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}

	// Samples 1..10, window 4, stride 2: windows starting at 1, 3, 5, 7.
	in, ok := h.Session("vm-a")
	if !ok || in.Cascade == nil {
		t.Fatalf("session has no cascade verdict: %+v", in)
	}
	if in.Cascade.Windows != 4 {
		t.Fatalf("scored %d windows, want 4", in.Cascade.Windows)
	}
	if in.Cascade.App != 1 || in.Cascade.AttackClass != 2 || in.Cascade.Attack != "atk2" {
		t.Fatalf("verdict %+v, want app 1 / attack 2 (atk2)", in.Cascade)
	}
	if in.Cascade.Time != 10 {
		t.Fatalf("verdict time %v, want 10 (last sample of the last window)", in.Cascade.Time)
	}

	var flat []float64
	ss.mu.Lock()
	for _, c := range ss.calls {
		flat = append(flat, c...)
	}
	ss.mu.Unlock()
	if len(flat) != 4*4*2 {
		t.Fatalf("scorer saw %d values, want %d", len(flat), 4*4*2)
	}
	for w := 0; w < 4; w++ {
		for i := 0; i < 4; i++ {
			k := float64(2*w + 1 + i)
			if flat[w*8+2*i] != k || flat[w*8+2*i+1] != 100+k {
				t.Fatalf("window %d sample %d: got (%v,%v), want (%v,%v)",
					w, i, flat[w*8+2*i], flat[w*8+2*i+1], k, 100+k)
			}
		}
	}

	st := h.ScorerStats()
	if !st.Attached || st.WindowsScored != 4 || st.WindowsDropped != 0 || st.QueueDepth != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// A full scoring queue must shed windows (counted) without stalling the
// shard, and windows queued while the scorer is busy must fuse into
// larger batches.
func TestScoringQueueShedsAndFuses(t *testing.T) {
	h := scoringHub(t)
	ss := &stubScorer{window: 2, gate: make(chan struct{})}
	if err := h.AttachScorer(ss, ScorerConfig{Stride: 2, Batch: 8, QueueCap: 6}); err != nil {
		t.Fatal(err)
	}
	if err := h.Open("vm-a", "raw"); err != nil {
		t.Fatal(err)
	}
	// 80 samples = 40 windows, while the scorer is blocked. The pipeline
	// holds at most QueueCap (6) plus two staging batches (8 each); the
	// shard must shed the rest without stalling — Drain would hang here
	// if a full queue blocked it.
	ingestCounters(t, h, "vm-a", 1, 80)
	close(ss.gate) // release every pending and future scorer call
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	st := h.ScorerStats()
	if st.WindowsDropped == 0 {
		t.Fatalf("expected sheds with queue cap 6 and 40 windows: %+v", st)
	}
	if st.WindowsScored+st.WindowsDropped != 40 {
		t.Fatalf("scored %d + dropped %d != 40 windows", st.WindowsScored, st.WindowsDropped)
	}
	maxFill := 0
	for _, n := range ss.batchSizes() {
		if n > maxFill {
			maxFill = n
		}
	}
	if maxFill < 2 {
		t.Fatalf("no fused batches: sizes %v", ss.batchSizes())
	}
}

// Close must score everything still queued before sealing: verdicts are
// part of the final session state.
func TestScoringCloseDrainsQueue(t *testing.T) {
	h := scoringHub(t)
	ss := &stubScorer{window: 5}
	if err := h.AttachScorer(ss, ScorerConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := h.Open("vm-a", "raw"); err != nil {
		t.Fatal(err)
	}
	ingestCounters(t, h, "vm-a", 1, 25) // 5 non-overlapping windows
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if st := h.ScorerStats(); st.WindowsScored != 5 {
		t.Fatalf("close scored %d windows, want 5: %+v", st.WindowsScored, st)
	}
}

func TestAttachScorerValidation(t *testing.T) {
	h := scoringHub(t)
	if err := h.AttachScorer(nil, ScorerConfig{}); err == nil {
		t.Fatal("nil scorer accepted")
	}
	if err := h.AttachScorer(&stubScorer{window: 0}, ScorerConfig{}); err == nil {
		t.Fatal("zero window accepted")
	}
	if err := h.AttachScorer(&stubScorer{window: 4}, ScorerConfig{Stride: 5}); err == nil {
		t.Fatal("stride > window accepted")
	}
	if err := h.AttachScorer(&stubScorer{window: 4}, ScorerConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := h.AttachScorer(&stubScorer{window: 4}, ScorerConfig{}); err == nil {
		t.Fatal("second scorer accepted")
	}
}
