package stream

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"memdos/internal/core"
	"memdos/internal/metrics"
	"memdos/internal/pcm"
	"memdos/internal/sim"
)

// testProfile is a synthetic attack-free profile: counters hover around
// access=100, miss=10.
func testProfile() core.Profile {
	return core.Profile{AccessMean: 100, AccessStd: 5, MissMean: 10, MissStd: 2}
}

// fastParams shrinks the Table I windows so alarms trigger within tens of
// samples instead of thousands.
func fastParams() core.Params {
	p := core.DefaultParams()
	p.W, p.DW, p.HC, p.Alpha = 20, 10, 2, 0.5
	return p
}

func sdsbFactory(p core.Params) DetectorFactory {
	return func() (core.Detector, error) { return core.NewSDSB(testProfile(), p) }
}

// sessionSamples generates a deterministic per-session stream: clean
// around the profile for the first half, collapsed AccessNum (as under
// bus locking) for the second.
func sessionSamples(seed uint64, n int) []pcm.Sample {
	r := sim.NewRNG(seed)
	out := make([]pcm.Sample, n)
	for i := range out {
		access := 100 + 4*math.Sin(float64(i)/9) + r.Float64()
		miss := 10 + r.Float64()
		if i >= n/2 {
			access *= 0.3 // attack: bus locking collapses AccessNum
		}
		out[i] = pcm.Sample{Time: 0.01 * float64(i+1), AccessNum: access, MissNum: miss}
	}
	return out
}

func newTestHub(t *testing.T, cfg Config, p core.Params) *Hub {
	t.Helper()
	h := NewHub(cfg)
	t.Cleanup(func() { h.Close() })
	if err := h.RegisterProfile("sdsb", sdsbFactory(p)); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestOpenIngestInfo(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Block
	h := newTestHub(t, cfg, fastParams())
	if err := h.Open("vm-1", "sdsb"); err != nil {
		t.Fatal(err)
	}
	samples := sessionSamples(1, 200)
	n, err := h.Ingest("vm-1", samples)
	if err != nil || n != len(samples) {
		t.Fatalf("Ingest = %d, %v", n, err)
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}
	in, ok := h.Session("vm-1")
	if !ok {
		t.Fatal("session vanished")
	}
	if in.Ingested != 200 || in.Pending != 0 || in.Dropped != 0 {
		t.Errorf("info = %+v", in)
	}
	if in.Detector != "SDS/B" || in.Profile != "sdsb" {
		t.Errorf("identity = %q/%q", in.Detector, in.Profile)
	}
	if in.Decisions == 0 || in.LastDecision == nil {
		t.Errorf("no decisions surfaced: %+v", in)
	}
	if in.State == nil {
		t.Error("no detector state snapshot")
	}
	if !in.AlarmActive || len(in.Incidents) == 0 {
		t.Errorf("attack half not alarming: active=%v incidents=%v", in.AlarmActive, in.Incidents)
	}
	st := h.Stats()
	if st.Sessions != 1 || st.SamplesIngested != 200 {
		t.Errorf("stats = %+v", st)
	}
}

func TestErrors(t *testing.T) {
	h := newTestHub(t, DefaultConfig(), fastParams())
	if _, err := h.Ingest("nope", sessionSamples(1, 10)); err == nil {
		t.Error("ingest into unknown session accepted")
	}
	if err := h.Open("vm-1", "nope"); err == nil {
		t.Error("unknown profile accepted")
	}
	if err := h.Open("", "sdsb"); err == nil {
		t.Error("empty session id accepted")
	}
	if err := h.Open("bad/id", "sdsb"); err == nil {
		t.Error("slash in session id accepted")
	}
	if err := h.Open("vm-1", "sdsb"); err != nil {
		t.Fatal(err)
	}
	if err := h.Open("vm-1", "sdsb"); err == nil {
		t.Error("duplicate session accepted")
	}
	if err := h.RegisterProfile("sdsb", sdsbFactory(fastParams())); err == nil {
		t.Error("duplicate profile accepted")
	}
}

// TestStressEquivalence is the acceptance stress test: >= 100k samples
// across >= 32 concurrent sessions, and every session's decision stream
// must be identical to feeding the same samples to the batch detector
// sequentially.
func TestStressEquivalence(t *testing.T) {
	const (
		nSessions = 32
		perSess   = 3200 // 32 * 3200 = 102,400 samples
		batchLen  = 80
	)
	p := core.DefaultParams() // real Table I windows
	cfg := Config{Shards: 4, QueueCap: 512, ShardBuffer: 64, Policy: Block, RecordDecisions: true}
	h := newTestHub(t, cfg, p)

	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = "vm-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if err := h.Open(ids[i], "sdsb"); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i int, id string) {
			defer wg.Done()
			samples := sessionSamples(uint64(i+1), perSess)
			for off := 0; off < len(samples); off += batchLen {
				end := off + batchLen
				if end > len(samples) {
					end = len(samples)
				}
				if _, err := h.Ingest(id, samples[off:end]); err != nil {
					t.Errorf("%s: %v", id, err)
					return
				}
			}
		}(i, id)
	}
	wg.Wait()
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}

	st := h.Stats()
	if st.SamplesIngested != nSessions*perSess || st.SamplesDropped != 0 {
		t.Fatalf("ingested %d dropped %d", st.SamplesIngested, st.SamplesDropped)
	}

	for i, id := range ids {
		got := h.Decisions(id)
		ref, err := core.NewSDSB(testProfile(), p)
		if err != nil {
			t.Fatal(err)
		}
		var want []core.Decision
		for _, s := range sessionSamples(uint64(i+1), perSess) {
			want = append(want, ref.Push(s)...)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: streaming decisions diverge from batch (%d vs %d decisions)", id, len(got), len(want))
		}
		// The incremental incident log must equal the batch fold too.
		batchIncs, err := core.Incidents(want)
		if err != nil {
			t.Fatal(err)
		}
		in, _ := h.Session(id)
		if !reflect.DeepEqual(in.Incidents, core.MergeIncidents(batchIncs, h.cfg.MergeGap)) {
			t.Fatalf("%s: incident log diverges", id)
		}
	}
}

func TestDropPolicy(t *testing.T) {
	cfg := Config{Shards: 1, QueueCap: 64, ShardBuffer: 1, Policy: DropNewest}
	h := newTestHub(t, cfg, fastParams())
	if err := h.Open("vm-1", "sdsb"); err != nil {
		t.Fatal(err)
	}
	samples := sessionSamples(3, 2000)
	sent, accepted := 0, 0
	for off := 0; off+100 <= len(samples); off += 100 {
		n, err := h.Ingest("vm-1", samples[off:off+100])
		if err != nil {
			t.Fatal(err)
		}
		sent += 100
		accepted += n
	}
	h.Drain()
	in, _ := h.Session("vm-1")
	if in.Ingested+in.Dropped != uint64(sent) {
		t.Errorf("accounting: ingested %d + dropped %d != sent %d", in.Ingested, in.Dropped, sent)
	}
	if int(in.Ingested) != accepted {
		t.Errorf("accepted %d vs ingested %d", accepted, in.Ingested)
	}
	// A tiny queue with a 1-batch shard buffer must shed something under
	// a 2000-sample burst.
	if in.Dropped == 0 {
		t.Error("expected drops under burst with QueueCap=64")
	}
	if h.Stats().SamplesDropped != in.Dropped {
		t.Error("hub/session drop counters disagree")
	}
}

func TestSubscribe(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Block
	h := newTestHub(t, cfg, fastParams())
	if err := h.Open("vm-1", "sdsb"); err != nil {
		t.Fatal(err)
	}
	events, cancel := h.Subscribe(16)
	defer cancel()

	n := 400
	samples := sessionSamples(5, n) // alarm in the attacked second half
	if _, err := h.Ingest("vm-1", samples); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	// Recovery: clean samples again -> alarm clears.
	r := sim.NewRNG(99)
	var clean []pcm.Sample
	for i := 0; i < n; i++ {
		clean = append(clean, pcm.Sample{
			Time:      0.01*float64(n) + 0.01*float64(i+1),
			AccessNum: 100 + r.Float64(),
			MissNum:   10 + r.Float64(),
		})
	}
	if _, err := h.Ingest("vm-1", clean); err != nil {
		t.Fatal(err)
	}
	h.Drain()

	var raised, cleared int
	for done := false; !done; {
		select {
		case ev := <-events:
			if ev.Session != "vm-1" || ev.Detector != "SDS/B" {
				t.Errorf("event = %+v", ev)
			}
			if ev.Raised {
				raised++
			} else {
				cleared++
			}
		default:
			done = true
		}
	}
	if raised == 0 || cleared == 0 {
		t.Errorf("raised=%d cleared=%d, want both > 0", raised, cleared)
	}
}

func TestCloseDrainsAndRefuses(t *testing.T) {
	cfg := Config{Shards: 2, QueueCap: 8192, ShardBuffer: 128, Policy: Block, RecordDecisions: true}
	h := NewHub(cfg)
	if err := h.RegisterProfile("sdsb", sdsbFactory(fastParams())); err != nil {
		t.Fatal(err)
	}
	if err := h.Open("vm-1", "sdsb"); err != nil {
		t.Fatal(err)
	}
	samples := sessionSamples(7, 1000)
	if _, err := h.Ingest("vm-1", samples); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Close drained: every queued sample reached the detector.
	ref, _ := core.NewSDSB(testProfile(), fastParams())
	var want []core.Decision
	for _, s := range samples {
		want = append(want, ref.Push(s)...)
	}
	if got := h.Decisions("vm-1"); !reflect.DeepEqual(got, want) {
		t.Fatalf("decisions after Close: got %d want %d", len(got), len(want))
	}
	if _, err := h.Ingest("vm-1", samples); err == nil {
		t.Error("ingest accepted after Close")
	}
	if err := h.Open("vm-2", "sdsb"); err == nil {
		t.Error("open accepted after Close")
	}
	if err := h.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

func TestCloseSession(t *testing.T) {
	h := newTestHub(t, DefaultConfig(), fastParams())
	if err := h.Open("vm-1", "sdsb"); err != nil {
		t.Fatal(err)
	}
	if err := h.CloseSession("vm-1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := h.Session("vm-1"); ok {
		t.Error("closed session still listed")
	}
	if _, err := h.Ingest("vm-1", sessionSamples(1, 10)); err == nil {
		t.Error("ingest into closed session accepted")
	}
	if err := h.CloseSession("vm-1"); err == nil {
		t.Error("double close accepted")
	}
	// The id can be reused with a fresh pipeline.
	if err := h.Open("vm-1", "sdsb"); err != nil {
		t.Fatal(err)
	}
}

// TestTrackerMatchesBatchIncidents pins the incremental tracker to
// core.Incidents over random in-order decision streams.
func TestTrackerMatchesBatchIncidents(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		r := sim.NewRNG(seed)
		var ds []core.Decision
		var tr incidentTracker
		tm := 0.0
		for i := 0; i < 200; i++ {
			tm += 0.5
			d := core.Decision{Time: tm, Alarm: r.Bool(0.4)}
			ds = append(ds, d)
			if !tr.observe(d) {
				t.Fatalf("seed %d: in-order decision reported out of order", seed)
			}
		}
		want, err := core.Incidents(ds)
		if err != nil {
			t.Fatal(err)
		}
		if got := tr.episodes(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: tracker %v != batch %v", seed, got, want)
		}
	}
}

func TestTrackerSkipsOutOfOrder(t *testing.T) {
	var tr incidentTracker
	if !tr.observe(core.Decision{Time: 2, Alarm: true}) {
		t.Fatal("first decision rejected")
	}
	if tr.observe(core.Decision{Time: 1, Alarm: false}) {
		t.Fatal("backwards decision accepted")
	}
	if !tr.observe(core.Decision{Time: 3, Alarm: false}) {
		t.Fatal("resumed decision rejected")
	}
	if incs := tr.episodes(); len(incs) != 1 || incs[0].Open {
		t.Fatalf("episodes = %v", incs)
	}
}

func TestHubMetricsExposition(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Block
	h := newTestHub(t, cfg, fastParams())
	reg := metrics.NewRegistry()
	h.RegisterMetrics(reg)
	if err := h.Open("vm-1", "sdsb"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Ingest("vm-1", sessionSamples(1, 300)); err != nil {
		t.Fatal(err)
	}
	h.Drain()
	var sb strings.Builder
	if _, err := reg.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"memdos_stream_samples_ingested_total 300",
		"memdos_stream_sessions 1",
		"memdos_stream_queue_depth{shard=\"0\"}",
		"# TYPE memdos_stream_decisions_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestSubscriberDropAccounting pins the alarm delivery guarantee
// documented in api.go: fan-out never blocks the detection path, events
// beyond a subscriber's buffer are shed, and every shed event is counted
// in SubscriberDropped.
func TestSubscriberDropAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Policy = Block
	h := newTestHub(t, cfg, fastParams())

	slow, cancelSlow := h.Subscribe(1) // never consumed: overflows
	defer cancelSlow()
	wide, cancelWide := h.Subscribe(1 << 10) // sized for everything
	defer cancelWide()

	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("vm-%d", i)
		if err := h.Open(id, "sdsb"); err != nil {
			t.Fatal(err)
		}
		if _, err := h.Ingest(id, sessionSamples(uint64(i+1), 200)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Drain(); err != nil {
		t.Fatal(err)
	}

	total := len(wide) // every published transition
	st := h.Stats()
	if st.AlarmsRaised < 3 || total < 3 {
		t.Fatalf("expected a raise per session: raised %d, published %d", st.AlarmsRaised, total)
	}
	if len(slow) != 1 {
		t.Fatalf("slow subscriber buffer holds %d events, want 1", len(slow))
	}
	if st.SubscriberDropped != uint64(total-1) {
		t.Errorf("SubscriberDropped = %d, want %d (published %d, buffered 1)",
			st.SubscriberDropped, total-1, total)
	}
	// The slow subscriber cost the sessions nothing.
	for i := 0; i < 3; i++ {
		in, ok := h.Session(fmt.Sprintf("vm-%d", i))
		if !ok || in.Pending != 0 || in.Dropped != 0 {
			t.Errorf("session vm-%d impeded: %+v", i, in)
		}
	}
}
