package stream

import (
	"bytes"
	"encoding/json"
	"testing"

	"memdos/internal/pcm"
)

func ingestBodyJSON(t testing.TB, n int) []byte {
	t.Helper()
	samples := make([]pcm.Sample, n)
	for i := range samples {
		samples[i] = pcm.Sample{Time: 0.01 * float64(i+1), AccessNum: 100, MissNum: 10}
	}
	body, err := json.Marshal(IngestRequest{Batches: []IngestBatch{
		{Session: "vm-1", Samples: samples},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestDecodeIngestIntoSteadyStateAllocs is the regression guard for the
// pooled JSON decode path: once the pooled request has grown its
// capacity, repeat decodes must cost strictly less than the
// allocate-a-fresh-request path, and per-sample cost stays at the JSON
// token machinery only — re-introducing a per-request batch/sample
// slice allocation fails the comparison.
func TestDecodeIngestIntoSteadyStateAllocs(t *testing.T) {
	body := ingestBodyJSON(t, 128)
	rd := bytes.NewReader(body)

	req := AcquireIngestRequest()
	defer ReleaseIngestRequest(req)
	pooled := testing.AllocsPerRun(50, func() {
		rd.Reset(body)
		if err := DecodeIngestInto(req, rd); err != nil {
			t.Fatal(err)
		}
	})
	fresh := testing.AllocsPerRun(50, func() {
		rd.Reset(body)
		if _, err := DecodeIngest(rd); err != nil {
			t.Fatal(err)
		}
	})
	if pooled >= fresh {
		t.Errorf("pooled decode costs %.1f allocs/op, fresh %.1f — reuse buys nothing", pooled, fresh)
	}
	// Absolute ceiling: pcm.Sample's strict UnmarshalJSON costs a
	// bounded handful of allocations per sample (its own decoder and
	// pointer-field scratch); anything past this budget means the pooled
	// path started allocating per-request state again.
	if budget := 12.0*128 + 64; pooled > budget {
		t.Errorf("pooled decode costs %.1f allocs/op, budget %.0f", pooled, budget)
	}
}
