// Package stream turns the batch detectors of internal/core into an
// always-on, multi-tenant detection service: the serving layer a
// hypervisor would run, with one detection session per protected VM.
//
// A Hub manages many named sessions. Each session owns its own detector
// pipeline (any core.Detector, built from a registered profile) and is
// pinned to one worker shard by a hash of its name, so every detector has
// exactly one writer goroutine and needs no locking on the hot path.
// Producers hand sample batches to Ingest; bounded per-session queues
// with an explicit policy (shed load or block) keep a slow detector from
// taking the hub down. Decisions fold incrementally into incident
// episodes with the same semantics as core.Incidents, and alarm
// transitions fan out to subscriber channels.
//
// Ordering: samples of one session are processed in the order Ingest
// accepted them. With several concurrent producers for the *same*
// session, the inter-batch order is whichever producer enqueues first —
// one producer per session (one VM, one PCM stream) is the intended
// shape, matching the paper's threat model.
package stream

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"memdos/internal/core"
	"memdos/internal/metrics"
	"memdos/internal/pcm"
)

// Policy selects what Ingest does when a session's queue is full.
type Policy int

const (
	// DropNewest sheds load: the incoming batch is dropped and counted.
	// This is the deploy-default — a detection service must never stall
	// the hypervisor's sampling loop.
	DropNewest Policy = iota
	// Block applies backpressure: Ingest waits until the queue has room
	// (or the hub closes). Use for offline replay and tests that must
	// not lose samples.
	Block
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case DropNewest:
		return "drop"
	case Block:
		return "block"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config sizes a Hub.
type Config struct {
	// Shards is the number of worker goroutines. Sessions are pinned to
	// shards by name hash. <= 0 means one shard per CPU.
	Shards int
	// QueueCap bounds each session's pending (accepted, not yet
	// processed) samples. <= 0 means 4096. The cap is approximate when
	// several producers ingest one session concurrently.
	QueueCap int
	// ShardBuffer is each shard's work-channel capacity in batches.
	// <= 0 means 256.
	ShardBuffer int
	// Policy is the full-queue behaviour.
	Policy Policy
	// MergeGap joins incident episodes separated by at most this many
	// seconds in session views (core.MergeIncidents); 0 merges only
	// touching episodes.
	MergeGap float64
	// RecordDecisions keeps every decision in memory per session, for
	// offline scoring and equivalence tests. Leave off in production —
	// the log grows without bound.
	RecordDecisions bool
}

// DefaultConfig returns the deploy-default hub sizing.
func DefaultConfig() Config {
	return Config{QueueCap: 4096, ShardBuffer: 256, Policy: DropNewest, MergeGap: 2}
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = numShards()
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.ShardBuffer <= 0 {
		c.ShardBuffer = 256
	}
	return c
}

// DetectorFactory builds one session's detector pipeline. It is called
// once per session so every session gets private state.
type DetectorFactory func() (core.Detector, error)

// work is one unit handed to a shard: either a sample batch for a
// session, or a flush barrier.
type work struct {
	sess  *Session
	batch *batchBuf
	flush chan<- struct{}
}

// batchBuf is a reusable copy of one ingested batch. Ingest copies the
// caller's samples into one of these (recycled through Hub.batchPool)
// and the shard goroutine returns it to the pool after processing, so
// the steady-state ingest path creates no per-batch garbage.
type batchBuf struct {
	samples []pcm.Sample
}

// maxPooledBatch bounds the capacity a recycled buffer may keep: one
// oversized batch must not pin megabytes in the pool forever.
const maxPooledBatch = 1 << 14

// shard is one worker goroutine plus its queue and counters.
type shard struct {
	id        int
	work      chan work
	done      chan struct{}
	pending   atomic.Int64 // samples accepted but not yet processed
	busyNanos atomic.Int64
	batches   atomic.Int64
}

// Hub is the multi-tenant streaming detection service.
type Hub struct {
	cfg    Config
	shards []*shard

	mu sync.RWMutex
	// profiles maps profile name to factory. guarded by mu.
	profiles map[string]DetectorFactory
	// sessions maps session ID to live session. guarded by mu.
	sessions map[string]*Session
	// closed marks the hub shut down. guarded by mu.
	closed   bool
	closing  atomic.Bool // readable without mu, for cond waiters
	ingestWG sync.WaitGroup

	// batchPool recycles batchBuf copies between Ingest and the shard
	// goroutines (sync.Pool: safe without mu).
	batchPool sync.Pool

	// scorer is the batched cascade scoring service, nil until
	// AttachScorer. Atomic so the shard hot path reads it without mu.
	scorer atomic.Pointer[hubScorer]

	samplesIngested   metrics.Counter
	samplesDropped    metrics.Counter
	decisionsTotal    metrics.Counter
	alarmsRaised      metrics.Counter
	subscriberDropped metrics.Counter

	subMu sync.Mutex
	// subs holds alarm subscriber channels. guarded by subMu.
	subs map[int]chan AlarmEvent
	// nextSub is the next subscriber id. guarded by subMu.
	nextSub int
}

// NewHub starts the worker shards and returns the hub.
func NewHub(cfg Config) *Hub {
	cfg = cfg.withDefaults()
	h := &Hub{
		cfg:      cfg,
		profiles: make(map[string]DetectorFactory),
		sessions: make(map[string]*Session),
		subs:     make(map[int]chan AlarmEvent),
	}
	for i := 0; i < cfg.Shards; i++ {
		sh := &shard{id: i, work: make(chan work, cfg.ShardBuffer), done: make(chan struct{})}
		h.shards = append(h.shards, sh)
		go h.runShard(sh)
	}
	return h
}

// ErrClosed is returned by operations on a closed hub.
var ErrClosed = fmt.Errorf("stream: hub closed")

// RegisterProfile makes a named detector pipeline available to sessions.
func (h *Hub) RegisterProfile(name string, f DetectorFactory) error {
	if name == "" || f == nil {
		return fmt.Errorf("stream: profile needs a name and a factory")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	if _, dup := h.profiles[name]; dup {
		return fmt.Errorf("stream: profile %q already registered", name)
	}
	h.profiles[name] = f
	return nil
}

// Profiles lists the registered profile names, sorted.
func (h *Hub) Profiles() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]string, 0, len(h.profiles))
	for name := range h.profiles {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Open creates a session for one protected VM, building its private
// detector pipeline from the named profile.
func (h *Hub) Open(sessionID, profile string) error {
	if err := validSessionID(sessionID); err != nil {
		return err
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	if _, dup := h.sessions[sessionID]; dup {
		return fmt.Errorf("stream: session %q already open", sessionID)
	}
	f, ok := h.profiles[profile]
	if !ok {
		return fmt.Errorf("stream: unknown profile %q", profile)
	}
	det, err := f()
	if err != nil {
		return fmt.Errorf("stream: profile %q: %w", profile, err)
	}
	s := newSession(h, sessionID, profile, det, h.shardFor(sessionID))
	h.sessions[sessionID] = s
	return nil
}

// CloseSession removes the session from the hub. Samples already
// accepted are still processed; further Ingest calls for the id fail.
func (h *Hub) CloseSession(sessionID string) error {
	h.mu.Lock()
	s, ok := h.sessions[sessionID]
	if ok {
		delete(h.sessions, sessionID)
	}
	h.mu.Unlock()
	if !ok {
		return fmt.Errorf("stream: no session %q", sessionID)
	}
	s.remove()
	return nil
}

// Ingest hands a batch of one session's PCM samples to its shard. It
// returns how many samples were accepted (all or none, per the queue
// policy). The batch is copied; the caller may reuse the slice.
//
//memdos:hotpath bench=ingest/stream
func (h *Hub) Ingest(sessionID string, samples []pcm.Sample) (int, error) {
	if len(samples) == 0 {
		return 0, nil
	}
	h.mu.RLock()
	if h.closed {
		h.mu.RUnlock()
		return 0, ErrClosed
	}
	s, ok := h.sessions[sessionID]
	if !ok {
		h.mu.RUnlock()
		return 0, fmt.Errorf("stream: no session %q", sessionID)
	}
	h.ingestWG.Add(1)
	h.mu.RUnlock()
	defer h.ingestWG.Done()
	return s.enqueue(samples)
}

// Drain blocks until every sample accepted before the call has been
// processed. Concurrent producers may enqueue more; Drain is a barrier,
// not a freeze.
func (h *Hub) Drain() error {
	h.mu.RLock()
	if h.closed {
		h.mu.RUnlock()
		return ErrClosed
	}
	h.ingestWG.Add(1)
	h.mu.RUnlock()
	defer h.ingestWG.Done()

	acks := make(chan struct{}, len(h.shards))
	for _, sh := range h.shards {
		sh.work <- work{flush: acks} //memdos:ignore golife shard workers outlive every Drain: Close waits on ingestWG (which this call holds) before closing work channels
	}
	for range h.shards {
		<-acks
	}
	// With the shards quiesced, flush the scoring pipeline too: every
	// window emitted by the processed samples is scored before Drain
	// returns. ingestWG (held above) keeps Close from closing the queue
	// under this send.
	if sc := h.scorer.Load(); sc != nil {
		sc.flushScorer()
	}
	return nil
}

// Close shuts the hub down gracefully: new ingests are refused, queued
// samples drain through the detectors, open incidents are sealed into
// the session logs, and subscriber channels close. Close is idempotent.
func (h *Hub) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil
	}
	h.closed = true
	h.closing.Store(true)
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.Unlock()

	// Wake Block-policy waiters so in-flight ingests can fail fast.
	for _, s := range sessions {
		s.wake()
	}
	h.ingestWG.Wait()
	for _, sh := range h.shards {
		close(sh.work) // the range loop drains buffered batches first
	}
	for _, sh := range h.shards {
		<-sh.done
	}
	// Shards have exited, so no goroutine can enqueue more windows: drain
	// the scoring pipeline before sealing the sessions, so final verdicts
	// land in the logs.
	if sc := h.scorer.Load(); sc != nil {
		sc.closeScorer()
	}
	for _, s := range sessions {
		s.seal()
	}
	h.subMu.Lock()
	for id, ch := range h.subs {
		close(ch)
		delete(h.subs, id)
	}
	h.subMu.Unlock()
	return nil
}

// getBatch copies samples into a pooled buffer.
func (h *Hub) getBatch(samples []pcm.Sample) *batchBuf {
	b, _ := h.batchPool.Get().(*batchBuf)
	if b == nil {
		b = new(batchBuf) //memdos:ignore hotalloc pool miss only; the steady ingest rate recycles buffers through batchPool
	}
	b.samples = append(b.samples[:0], samples...)
	return b
}

// putBatch recycles a processed buffer, dropping outliers so one giant
// batch cannot pin its capacity in the pool.
func (h *Hub) putBatch(b *batchBuf) {
	if cap(b.samples) > maxPooledBatch {
		return
	}
	h.batchPool.Put(b)
}

// runShard is the single writer for every session pinned to sh.
func (h *Hub) runShard(sh *shard) {
	defer close(sh.done)
	for w := range sh.work {
		if w.flush != nil {
			w.flush <- struct{}{}
			continue
		}
		start := time.Now()
		w.sess.process(w.batch.samples)
		sh.busyNanos.Add(time.Since(start).Nanoseconds())
		sh.batches.Add(1)
		n := int64(len(w.batch.samples))
		h.putBatch(w.batch)
		sh.pending.Add(-n)
		w.sess.finishBatch(n)
	}
}

// shardFor pins a session name to a shard with FNV-1a.
func (h *Hub) shardFor(id string) *shard {
	hash := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		hash = (hash ^ uint32(id[i])) * 16777619
	}
	return h.shards[int(hash%uint32(len(h.shards)))]
}

// Session returns a point-in-time view of one session.
func (h *Hub) Session(sessionID string) (SessionInfo, bool) {
	h.mu.RLock()
	s, ok := h.sessions[sessionID]
	h.mu.RUnlock()
	if !ok {
		return SessionInfo{}, false
	}
	return s.info(), true
}

// Sessions returns a view of every open session, sorted by id.
func (h *Hub) Sessions() []SessionInfo {
	h.mu.RLock()
	sessions := make([]*Session, 0, len(h.sessions))
	for _, s := range h.sessions {
		sessions = append(sessions, s)
	}
	h.mu.RUnlock()
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		out = append(out, s.info())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Decisions returns the recorded decision log of one session (nil unless
// Config.RecordDecisions is on).
func (h *Hub) Decisions(sessionID string) []core.Decision {
	h.mu.RLock()
	s, ok := h.sessions[sessionID]
	h.mu.RUnlock()
	if !ok {
		return nil
	}
	return s.recordedDecisions()
}

// Subscribe registers an alarm listener. Events are delivered best-effort:
// when the buffer is full the event is counted as dropped, never blocking
// a shard. cancel unsubscribes; the channel closes on cancel or hub Close.
func (h *Hub) Subscribe(buffer int) (<-chan AlarmEvent, func()) {
	if buffer <= 0 {
		buffer = 16
	}
	ch := make(chan AlarmEvent, buffer)
	h.subMu.Lock()
	if h.closing.Load() {
		h.subMu.Unlock()
		close(ch)
		return ch, func() {}
	}
	id := h.nextSub
	h.nextSub++
	h.subs[id] = ch
	h.subMu.Unlock()
	cancel := func() {
		h.subMu.Lock()
		if c, ok := h.subs[id]; ok {
			delete(h.subs, id)
			close(c)
		}
		h.subMu.Unlock()
	}
	return ch, cancel
}

// publish fans one alarm transition out to every subscriber.
func (h *Hub) publish(ev AlarmEvent) {
	h.subMu.Lock()
	for _, ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.subscriberDropped.Inc()
		}
	}
	h.subMu.Unlock()
}

// HubStats is a programmatic snapshot of the hub counters.
type HubStats struct {
	Sessions          int
	SamplesIngested   uint64
	SamplesDropped    uint64
	Decisions         uint64
	AlarmsRaised      uint64
	SubscriberDropped uint64
	QueueDepth        int64
}

// Stats snapshots the hub counters.
func (h *Hub) Stats() HubStats {
	h.mu.RLock()
	n := len(h.sessions)
	h.mu.RUnlock()
	var depth int64
	for _, sh := range h.shards {
		depth += sh.pending.Load()
	}
	return HubStats{
		Sessions:          n,
		SamplesIngested:   h.samplesIngested.Value(),
		SamplesDropped:    h.samplesDropped.Value(),
		Decisions:         h.decisionsTotal.Value(),
		AlarmsRaised:      h.alarmsRaised.Value(),
		SubscriberDropped: h.subscriberDropped.Value(),
		QueueDepth:        depth,
	}
}

// RegisterMetrics exposes the hub counters, per-shard queue depths and
// per-shard busy time on a metrics registry (the /metrics endpoint).
func (h *Hub) RegisterMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("memdos_stream_samples_ingested_total",
		"PCM samples accepted by Ingest.", &h.samplesIngested)
	reg.RegisterCounter("memdos_stream_samples_dropped_total",
		"PCM samples shed by the queue policy.", &h.samplesDropped)
	reg.RegisterCounter("memdos_stream_decisions_total",
		"Detector decisions produced.", &h.decisionsTotal)
	reg.RegisterCounter("memdos_stream_alarms_raised_total",
		"Alarm raise transitions across all sessions.", &h.alarmsRaised)
	reg.RegisterCounter("memdos_stream_subscriber_dropped_total",
		"Alarm events dropped on full subscriber buffers.", &h.subscriberDropped)
	reg.RegisterGaugeFunc("memdos_stream_sessions",
		"Open detection sessions.", func() []metrics.Point {
			h.mu.RLock()
			n := len(h.sessions)
			h.mu.RUnlock()
			return []metrics.Point{{Value: float64(n)}}
		})
	reg.RegisterGaugeFunc("memdos_stream_queue_depth",
		"Samples accepted but not yet processed, per shard.", func() []metrics.Point {
			pts := make([]metrics.Point, len(h.shards))
			for i, sh := range h.shards {
				pts[i] = metrics.Point{Labels: fmt.Sprintf("shard=%q", fmt.Sprint(sh.id)), Value: float64(sh.pending.Load())}
			}
			return pts
		})
	reg.RegisterCounterFunc("memdos_stream_shard_busy_seconds_total",
		"Detector processing time, per shard.", func() []metrics.Point {
			pts := make([]metrics.Point, len(h.shards))
			for i, sh := range h.shards {
				pts[i] = metrics.Point{Labels: fmt.Sprintf("shard=%q", fmt.Sprint(sh.id)), Value: float64(sh.busyNanos.Load()) / 1e9}
			}
			return pts
		})
	reg.RegisterCounterFunc("memdos_stream_shard_batches_total",
		"Sample batches processed, per shard.", func() []metrics.Point {
			pts := make([]metrics.Point, len(h.shards))
			for i, sh := range h.shards {
				pts[i] = metrics.Point{Labels: fmt.Sprintf("shard=%q", fmt.Sprint(sh.id)), Value: float64(sh.batches.Load())}
			}
			return pts
		})
	// Scoring-service metrics. Registered unconditionally (the registry
	// snapshot must not depend on wiring order); they read zero until a
	// scorer is attached.
	scorerPoint := func(get func(*hubScorer) float64) func() []metrics.Point {
		return func() []metrics.Point {
			sc := h.scorer.Load()
			if sc == nil {
				return nil
			}
			return []metrics.Point{{Value: get(sc)}}
		}
	}
	reg.RegisterCounterFunc("memdos_dnn_windows_scored_total",
		"Session windows classified by the batched cascade scorer.",
		scorerPoint(func(sc *hubScorer) float64 { return float64(sc.windowsScored.Load()) }))
	reg.RegisterCounterFunc("memdos_dnn_windows_dropped_total",
		"Session windows shed on a full scoring queue.",
		scorerPoint(func(sc *hubScorer) float64 { return float64(sc.windowsDropped.Load()) }))
	reg.RegisterCounterFunc("memdos_dnn_batches_total",
		"Fused scorer calls (windows_scored_total/batches_total is the mean batch fill).",
		scorerPoint(func(sc *hubScorer) float64 { return float64(sc.batchesScored.Load()) }))
	reg.RegisterCounterFunc("memdos_dnn_score_seconds_total",
		"Time spent inside the fused batch kernel.",
		scorerPoint(func(sc *hubScorer) float64 { return float64(sc.scoreNanos.Load()) / 1e9 }))
	reg.RegisterGaugeFunc("memdos_dnn_queue_depth",
		"Windows waiting to be batched for scoring.",
		scorerPoint(func(sc *hubScorer) float64 { return float64(sc.queueLen.Load()) }))
}

// validSessionID bounds session names for use as map keys, URL path
// elements and metric labels.
func validSessionID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("stream: session id must be 1-128 bytes")
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c < 0x21 || c == 0x7f || c == '/' || c == '"' {
			return fmt.Errorf("stream: session id %q contains forbidden byte %q", id, c)
		}
	}
	return nil
}
