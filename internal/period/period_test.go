package period

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"memdos/internal/sim"
)

// naiveDFT is the O(n^2) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Rect(1, ang)
		}
		out[k] = sum
	}
	return out
}

func complexClose(a, b []complex128, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if cmplx.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestFFTMatchesNaivePow2(t *testing.T) {
	r := sim.NewRNG(1)
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
		}
		if !complexClose(FFT(x), naiveDFT(x), 1e-8*float64(n)) {
			t.Errorf("FFT mismatch vs naive DFT at n=%d", n)
		}
	}
}

func TestFFTMatchesNaiveArbitraryLength(t *testing.T) {
	r := sim.NewRNG(2)
	for _, n := range []int{3, 5, 6, 7, 12, 17, 31, 100, 243} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Normal(0, 1), r.Normal(0, 1))
		}
		if !complexClose(FFT(x), naiveDFT(x), 1e-7*float64(n)) {
			t.Errorf("Bluestein FFT mismatch vs naive DFT at n=%d", n)
		}
	}
}

func TestFFTDoesNotModifyInput(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5} // non-power-of-two
	orig := append([]complex128(nil), x...)
	FFT(x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatal("FFT modified its input")
		}
	}
	y := []complex128{1, 2, 3, 4}
	origY := append([]complex128(nil), y...)
	FFT(y)
	for i := range y {
		if y[i] != origY[i] {
			t.Fatal("FFT modified its power-of-two input")
		}
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%120) + 1
		r := sim.NewRNG(seed)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.Normal(0, 10), r.Normal(0, 10))
		}
		return complexClose(IFFT(FFT(x)), x, 1e-7*float64(n))
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestFFTEmpty(t *testing.T) {
	if FFT(nil) != nil || IFFT(nil) != nil {
		t.Error("FFT/IFFT of empty input should be nil")
	}
}

func TestFFTLinearity(t *testing.T) {
	r := sim.NewRNG(3)
	n := 48
	x := make([]complex128, n)
	y := make([]complex128, n)
	z := make([]complex128, n)
	for i := range x {
		x[i] = complex(r.Normal(0, 1), 0)
		y[i] = complex(r.Normal(0, 1), 0)
		z[i] = 2*x[i] + 3*y[i]
	}
	fx, fy, fz := FFT(x), FFT(y), FFT(z)
	for i := range fz {
		if cmplx.Abs(fz[i]-(2*fx[i]+3*fy[i])) > 1e-8 {
			t.Fatal("FFT not linear")
		}
	}
}

func TestParsevalTheorem(t *testing.T) {
	r := sim.NewRNG(4)
	n := 100
	x := make([]float64, n)
	var timeEnergy float64
	for i := range x {
		x[i] = r.Normal(0, 2)
		timeEnergy += x[i] * x[i]
	}
	spec := FFTReal(x)
	var freqEnergy float64
	for _, c := range spec {
		freqEnergy += real(c)*real(c) + imag(c)*imag(c)
	}
	freqEnergy /= float64(n)
	if math.Abs(timeEnergy-freqEnergy) > 1e-6*timeEnergy {
		t.Errorf("Parseval violated: time %v vs freq %v", timeEnergy, freqEnergy)
	}
}

func TestPeriodogramPureTone(t *testing.T) {
	n := 128
	x := make([]float64, n)
	for i := range x {
		x[i] = 50 + 10*math.Sin(2*math.Pi*8*float64(i)/float64(n))
	}
	spec := Periodogram(x)
	bestK := 0
	for k := 1; k < len(spec); k++ {
		if spec[k] > spec[bestK] {
			bestK = k
		}
	}
	if bestK != 8 {
		t.Errorf("periodogram peak at bin %d, want 8", bestK)
	}
	// The DC offset must have been removed.
	if spec[0] > 1e-12 {
		t.Errorf("DC power = %v, want ~0", spec[0])
	}
}

func TestACFBasics(t *testing.T) {
	n := 120
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(2 * math.Pi * float64(i) / 20)
	}
	acf := ACF(x, 60)
	if acf[0] != 1 {
		t.Errorf("ACF[0] = %v, want 1", acf[0])
	}
	// Lag 20 (the true period) should correlate strongly; lag 10 (the
	// half-period) should anti-correlate.
	if acf[20] < 0.8 {
		t.Errorf("ACF at true period = %v, want > 0.8", acf[20])
	}
	if acf[10] > -0.8 {
		t.Errorf("ACF at half period = %v, want < -0.8", acf[10])
	}
}

func TestACFConstantSeries(t *testing.T) {
	x := []float64{5, 5, 5, 5, 5, 5}
	acf := ACF(x, 4)
	if acf[0] != 1 {
		t.Errorf("ACF[0] = %v", acf[0])
	}
	for lag := 1; lag <= 4; lag++ {
		if acf[lag] != 0 {
			t.Errorf("constant series ACF[%d] = %v, want 0", lag, acf[lag])
		}
	}
}

func TestACFEdgeCases(t *testing.T) {
	if ACF(nil, 5) != nil {
		t.Error("ACF(nil) should be nil")
	}
	if ACF([]float64{1, 2}, -1) != nil {
		t.Error("ACF with negative maxLag should be nil")
	}
	got := ACF([]float64{1, 2, 3}, 99)
	if len(got) != 3 {
		t.Errorf("ACF clamps maxLag: len = %d, want 3", len(got))
	}
}

func TestACFBoundedByOne(t *testing.T) {
	check := func(seed uint64) bool {
		r := sim.NewRNG(seed)
		x := make([]float64, 64)
		for i := range x {
			x[i] = r.Normal(0, 5)
		}
		for _, v := range ACF(x, 63) {
			if v > 1+1e-9 || v < -1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

// sineSeries builds a noisy periodic series with the given period.
func sineSeries(r *sim.RNG, n int, period float64, noise float64) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 100 + 20*math.Sin(2*math.Pi*float64(i)/period) + r.Normal(0, noise)
	}
	return x
}

func TestEstimatorFindsKnownPeriod(t *testing.T) {
	r := sim.NewRNG(10)
	est := NewEstimator(DefaultEstimatorConfig())
	for _, period := range []float64{10, 17, 25, 40} {
		x := sineSeries(r, 200, period, 2)
		got := est.Estimate(x)
		if !got.Periodic {
			t.Errorf("period %v not detected", period)
			continue
		}
		if math.Abs(got.Period-period) > period*0.15 {
			t.Errorf("period %v estimated as %v", period, got.Period)
		}
	}
}

func TestEstimatorRejectsNoise(t *testing.T) {
	r := sim.NewRNG(11)
	est := NewEstimator(DefaultEstimatorConfig())
	falsePositives := 0
	const trials = 50
	for trial := 0; trial < trials; trial++ {
		x := make([]float64, 200)
		for i := range x {
			x[i] = r.Normal(100, 10)
		}
		if est.Estimate(x).Periodic {
			falsePositives++
		}
	}
	if frac := float64(falsePositives) / trials; frac > 0.2 {
		t.Errorf("white-noise false positive rate = %v, want <= 0.2", frac)
	}
}

func TestEstimatorShortSeries(t *testing.T) {
	est := NewEstimator(DefaultEstimatorConfig())
	if est.Estimate([]float64{1, 2, 3}).Periodic {
		t.Error("short series should not be periodic")
	}
}

func TestEstimatorTracksElongatedPeriod(t *testing.T) {
	// Under attack the application's period stretches; the estimator must
	// follow. This mirrors SDS/P's detection signal (Observation 2).
	r := sim.NewRNG(12)
	est := NewEstimator(DefaultEstimatorConfig())
	normal := sineSeries(r, 200, 17, 1)
	stretched := sineSeries(r, 200, 26, 1)
	pn := est.Estimate(normal)
	ps := est.Estimate(stretched)
	if !pn.Periodic || !ps.Periodic {
		t.Fatalf("periodicity lost: %+v %+v", pn, ps)
	}
	if ps.Period <= pn.Period {
		t.Errorf("stretched period %v should exceed normal %v", ps.Period, pn.Period)
	}
}

func TestACFOnlyFindsMultiples(t *testing.T) {
	// Documented DFT-ACF motivation: plain ACF may land on a multiple of
	// the true period; DFT-ACF should land on the fundamental. We only
	// assert DFT-ACF's correctness and that ACF-only returns *some* hill.
	r := sim.NewRNG(13)
	x := sineSeries(r, 240, 20, 0.5)
	acfOnly := EstimateACFOnly(x, 0.2)
	if !acfOnly.Periodic {
		t.Fatal("ACF-only found nothing")
	}
	if mod := math.Mod(acfOnly.Period, 20); mod > 2 && mod < 18 {
		t.Errorf("ACF-only period %v is not near a multiple of 20", acfOnly.Period)
	}
	dftacf := NewEstimator(DefaultEstimatorConfig()).Estimate(x)
	if math.Abs(dftacf.Period-20) > 3 {
		t.Errorf("DFT-ACF period = %v, want ~20", dftacf.Period)
	}
}

func TestDFTOnlyOnTone(t *testing.T) {
	r := sim.NewRNG(14)
	x := sineSeries(r, 200, 25, 0.5)
	got := EstimateDFTOnly(x)
	if !got.Periodic || math.Abs(got.Period-25) > 4 {
		t.Errorf("DFT-only period = %+v, want ~25", got)
	}
	if EstimateDFTOnly([]float64{1, 2}).Periodic {
		t.Error("DFT-only on tiny series should not be periodic")
	}
}

func TestEstimatorDefaultsFilledIn(t *testing.T) {
	est := NewEstimator(EstimatorConfig{})
	if est.cfg.MaxCandidates != 5 || est.cfg.PowerFactor != 3 {
		t.Errorf("zero config not defaulted: %+v", est.cfg)
	}
}

func TestIsACFPeakPlateau(t *testing.T) {
	acf := []float64{0, 0.5, 0.9, 0.9, 0.5, 0}
	if !isACFPeak(acf, 2) || !isACFPeak(acf, 3) {
		t.Error("plateau peak not detected")
	}
	if isACFPeak(acf, 0) || isACFPeak(acf, 5) {
		t.Error("boundary lags cannot be peaks")
	}
	if isACFPeak(acf, 4) {
		t.Error("descending lag misreported as peak")
	}
}
