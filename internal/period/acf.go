package period

// ACF returns the normalized autocorrelation function of x for lags
// 0..maxLag. The series is mean-centered and the result is normalized so
// ACF[0] == 1 (unless the series has zero variance, in which case all lags
// are 0 except lag 0 which is 1 for non-empty input).
func ACF(x []float64, maxLag int) []float64 {
	n := len(x)
	if n == 0 || maxLag < 0 {
		return nil
	}
	if maxLag >= n {
		maxLag = n - 1
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	centered := make([]float64, n)
	var c0 float64
	for i, v := range x {
		centered[i] = v - mean
		c0 += centered[i] * centered[i]
	}
	out := make([]float64, maxLag+1)
	out[0] = 1
	if c0 == 0 { //memdos:ignore floateq exact zero variance (constant window); division guard
		return out
	}
	// For the short windows SDS/P uses (a few hundred points), the direct
	// O(n*maxLag) computation beats FFT-based convolution in practice and
	// avoids padding bookkeeping.
	for lag := 1; lag <= maxLag; lag++ {
		var c float64
		for i := 0; i+lag < n; i++ {
			c += centered[i] * centered[i+lag]
		}
		out[lag] = c / c0
	}
	return out
}

// isACFPeak reports whether lag sits on a local maximum of acf (a "hill" in
// Vlachos et al.'s terminology), searching a small neighbourhood so that
// plateau-shaped peaks are still accepted.
func isACFPeak(acf []float64, lag int) bool {
	if lag <= 0 || lag >= len(acf)-1 {
		return false
	}
	l, r := lag-1, lag+1
	// Walk off equal-valued plateaus.
	//memdos:ignore floateq plateau walk wants bit-identical stored values, not approximate ones
	for l > 0 && acf[l] == acf[lag] {
		l--
	}
	//memdos:ignore floateq plateau walk wants bit-identical stored values, not approximate ones
	for r < len(acf)-1 && acf[r] == acf[lag] {
		r++
	}
	return acf[l] < acf[lag] && acf[r] < acf[lag]
}
