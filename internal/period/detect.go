package period

import (
	"math"
	"sort"
)

// Estimate is the result of a DFT-ACF period search.
type Estimate struct {
	// Periodic reports whether a credible period was found.
	Periodic bool
	// Period is the estimated period in samples (0 when not periodic).
	Period float64
	// Correlation is the ACF value at the accepted period — a confidence
	// proxy in [-1, 1].
	Correlation float64
	// Power is the periodogram power of the accepted candidate frequency.
	Power float64
}

// EstimatorConfig tunes the DFT-ACF estimator.
type EstimatorConfig struct {
	// MaxCandidates bounds how many periodogram peaks are validated
	// against the ACF (Vlachos et al. use the top few "power hints").
	MaxCandidates int
	// PowerFactor is the significance multiplier: a candidate frequency
	// must carry at least PowerFactor times the mean spectral power.
	PowerFactor float64
	// MinCorrelation is the minimum ACF value at the candidate period for
	// the period to be accepted.
	MinCorrelation float64
	// SearchRadiusFrac widens the ACF hill search around each DFT
	// candidate period by this fraction of the period (minimum 2 lags),
	// compensating for the coarse DFT frequency grid.
	SearchRadiusFrac float64
}

// DefaultEstimatorConfig returns the configuration used by SDS/P.
func DefaultEstimatorConfig() EstimatorConfig {
	return EstimatorConfig{
		MaxCandidates:    5,
		PowerFactor:      3,
		MinCorrelation:   0.2,
		SearchRadiusFrac: 0.25,
	}
}

// Estimator finds the dominant period of a time series using the DFT-ACF
// combination of Vlachos et al.: the DFT proposes candidate periods (it
// cannot produce spurious multiples but has coarse resolution and may
// propose frequencies that don't exist), and the ACF validates each
// candidate on a hill (avoiding DFT false frequencies while not wandering
// to ACF's period multiples).
type Estimator struct {
	cfg EstimatorConfig
}

// NewEstimator returns an Estimator with the given configuration. Zero
// fields are replaced by the defaults.
func NewEstimator(cfg EstimatorConfig) *Estimator {
	def := DefaultEstimatorConfig()
	if cfg.MaxCandidates <= 0 {
		cfg.MaxCandidates = def.MaxCandidates
	}
	if cfg.PowerFactor <= 0 {
		cfg.PowerFactor = def.PowerFactor
	}
	if cfg.MinCorrelation <= 0 {
		cfg.MinCorrelation = def.MinCorrelation
	}
	if cfg.SearchRadiusFrac <= 0 {
		cfg.SearchRadiusFrac = def.SearchRadiusFrac
	}
	return &Estimator{cfg: cfg}
}

// candidate couples a periodogram bin with its implied period.
type candidate struct {
	period float64
	power  float64
}

// Estimate runs the DFT-ACF search over x. Series shorter than 8 samples
// are reported as non-periodic.
func (e *Estimator) Estimate(x []float64) Estimate {
	n := len(x)
	if n < 8 {
		return Estimate{}
	}
	spec := Periodogram(x)
	// Mean power over non-DC bins forms the significance floor.
	var meanPower float64
	for _, p := range spec[1:] {
		meanPower += p
	}
	meanPower /= float64(len(spec) - 1)
	threshold := e.cfg.PowerFactor * meanPower

	var cands []candidate
	for k := 1; k < len(spec); k++ {
		if spec[k] < threshold {
			continue
		}
		p := float64(n) / float64(k)
		// Periods must repeat at least twice inside the window to be
		// observable, and one-sample "periods" are noise.
		if p < 2 || p > float64(n)/2 {
			continue
		}
		cands = append(cands, candidate{period: p, power: spec[k]})
	}
	if len(cands) == 0 {
		return Estimate{}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].power > cands[j].power })
	if len(cands) > e.cfg.MaxCandidates {
		cands = cands[:e.cfg.MaxCandidates]
	}

	maxLag := n - 1
	acf := ACF(x, maxLag)
	best := Estimate{}
	for _, c := range cands {
		lag := int(math.Round(c.period))
		radius := int(math.Ceil(e.cfg.SearchRadiusFrac * c.period))
		if radius < 2 {
			radius = 2
		}
		// Find the best ACF hill within the search radius of the DFT
		// candidate.
		bestLag, bestVal := -1, math.Inf(-1)
		for l := lag - radius; l <= lag+radius; l++ {
			if l < 2 || l > maxLag-1 {
				continue
			}
			if acf[l] > bestVal && isACFPeak(acf, l) {
				bestLag, bestVal = l, acf[l]
			}
		}
		if bestLag < 0 || bestVal < e.cfg.MinCorrelation {
			continue
		}
		if !best.Periodic || bestVal > best.Correlation {
			best = Estimate{Periodic: true, Period: float64(bestLag), Correlation: bestVal, Power: c.power}
		}
	}
	return best
}

// EstimateDFTOnly returns the dominant period implied by the single
// strongest periodogram bin with no ACF validation. It exists for the
// ablation study comparing plain DFT against DFT-ACF.
func EstimateDFTOnly(x []float64) Estimate {
	n := len(x)
	if n < 8 {
		return Estimate{}
	}
	spec := Periodogram(x)
	bestK, bestP := 0, 0.0
	for k := 1; k < len(spec); k++ {
		if spec[k] > bestP {
			bestK, bestP = k, spec[k]
		}
	}
	if bestK == 0 {
		return Estimate{}
	}
	return Estimate{Periodic: true, Period: float64(n) / float64(bestK), Power: bestP}
}

// EstimateACFOnly returns the first significant ACF hill with no DFT
// guidance. It exists for the ablation study: plain ACF tends to lock onto
// multiples of the true period.
func EstimateACFOnly(x []float64, minCorrelation float64) Estimate {
	n := len(x)
	if n < 8 {
		return Estimate{}
	}
	acf := ACF(x, n-1)
	bestLag, bestVal := -1, math.Inf(-1)
	for l := 2; l < n-1; l++ {
		if isACFPeak(acf, l) && acf[l] >= minCorrelation && acf[l] > bestVal {
			bestLag, bestVal = l, acf[l]
		}
	}
	if bestLag < 0 {
		return Estimate{}
	}
	return Estimate{Periodic: true, Period: float64(bestLag), Correlation: bestVal}
}
