// Package period implements periodicity detection for counter time series:
// a discrete Fourier transform (radix-2 Cooley-Tukey with a Bluestein
// fallback for arbitrary lengths), the autocorrelation function, and the
// combined DFT-ACF period estimator of Vlachos et al. (SDM'05) that SDS/P
// uses to track the period of periodic applications.
package period

import (
	"math"
	"math/cmplx"
)

// FFT computes the discrete Fourier transform of x. The input is not
// modified. Arbitrary lengths are supported: powers of two use radix-2
// Cooley-Tukey, other lengths use Bluestein's chirp-z algorithm.
func FFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	if n&(n-1) == 0 {
		out := append([]complex128(nil), x...)
		fftPow2(out, false)
		return out
	}
	return bluestein(x, false)
}

// IFFT computes the inverse discrete Fourier transform of x, including the
// 1/n normalization.
func IFFT(x []complex128) []complex128 {
	n := len(x)
	if n == 0 {
		return nil
	}
	var out []complex128
	if n&(n-1) == 0 {
		out = append([]complex128(nil), x...)
		fftPow2(out, true)
	} else {
		out = bluestein(x, true)
	}
	scale := complex(1/float64(n), 0)
	for i := range out {
		out[i] *= scale
	}
	return out
}

// FFTReal transforms a real-valued series.
func FFTReal(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return FFT(c)
}

// fftPow2 performs an in-place iterative radix-2 transform. inverse selects
// the conjugate (un-normalized inverse) transform.
func fftPow2(a []complex128, inverse bool) {
	n := len(a)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length >> 1
			for j := 0; j < half; j++ {
				u := a[i+j]
				v := a[i+j+half] * w
				a[i+j] = u + v
				a[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes a DFT of arbitrary length via the chirp-z transform,
// reducing it to a power-of-two convolution.
func bluestein(x []complex128, inverse bool) []complex128 {
	n := len(x)
	m := 1
	for m < 2*n-1 {
		m <<= 1
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// chirp[k] = exp(sign * i*pi*k^2/n)
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		// k*k may overflow for huge n in theory; series here are small.
		ang := sign * math.Pi * float64(k) * float64(k) / float64(n)
		chirp[k] = cmplx.Rect(1, ang)
	}
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
		b[k] = cmplx.Conj(chirp[k])
	}
	for k := 1; k < n; k++ {
		b[m-k] = cmplx.Conj(chirp[k])
	}
	fftPow2(a, false)
	fftPow2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	fftPow2(a, true)
	scale := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		out[k] = a[k] * scale * chirp[k]
	}
	return out
}

// Periodogram returns the power spectrum |X_k|^2 / n of the mean-removed
// series for k = 0..n/2 (inclusive). Removing the mean suppresses the DC
// component so dominant-frequency searches are not swamped by the offset.
func Periodogram(x []float64) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(n)
	centered := make([]float64, n)
	for i, v := range x {
		centered[i] = v - mean
	}
	spec := FFTReal(centered)
	half := n/2 + 1
	out := make([]float64, half)
	for k := 0; k < half; k++ {
		m := cmplx.Abs(spec[k])
		out[k] = m * m / float64(n)
	}
	return out
}
