// Package workload models the memory-access behaviour of the ten cloud
// applications studied in the paper (HiBench ML workloads, Hive queries,
// TeraSort, PageRank, and FaceNet) as stochastic counter processes.
//
// The paper's detectors observe only the per-10ms LLC access and miss
// counters, so each application is modelled by the process generating those
// counters: a base access rate modulated by (a) a regime chain capturing
// the application's execution phases (map/shuffle/reduce, query stages,
// training iterations, ...), (b) an optional periodic batch pattern (PCA
// and FaceNet repeat identical computations per input batch and are the
// paper's "periodic applications"), and (c) multiplicative sampling noise.
//
// Crucially, both the regime chain and the periodic pattern advance with
// the application's *work phase*, not with wall time. When an attack slows
// the application down, the same pattern plays out stretched in wall time —
// reproducing the paper's Observation (2) that attacks prolong the period
// of periodic applications.
package workload

import (
	"fmt"
	"math"

	"memdos/internal/sim"
)

// Phase is one state of an application's regime chain.
type Phase struct {
	// AccessFactor scales the base access rate while in this phase.
	AccessFactor float64
	// MissFactor scales the base miss ratio while in this phase.
	MissFactor float64
	// DwellMean is the mean phase duration in work-seconds (exponential).
	DwellMean float64
}

// Spec statically describes an application model.
type Spec struct {
	// Name is the full application name, Abbrev the paper's Table II
	// abbreviation.
	Name   string
	Abbrev string

	// BaseAccessRate is the intrinsic LLC access demand in accesses per
	// work-second.
	BaseAccessRate float64
	// BaseMissRatio is the intrinsic LLC miss ratio in [0, 1].
	BaseMissRatio float64
	// NoiseFrac is the per-sample multiplicative Gaussian noise fraction.
	NoiseFrac float64

	// Periodic marks applications with batch-periodic access patterns.
	Periodic bool
	// PeriodSec is the nominal batch period in work-seconds.
	PeriodSec float64
	// Amplitude is the periodic modulation depth as a fraction of the
	// base access rate.
	Amplitude float64

	// Phases is the regime chain; an empty slice means a single steady
	// phase. Transitions pick a uniformly random *different* phase.
	Phases []Phase

	// WorkSeconds is the nominal completion time used by the
	// performance-overhead experiments. Zero means the application runs
	// indefinitely (recurring service).
	WorkSeconds float64
}

// Service returns a copy of the spec with WorkSeconds cleared, i.e. the
// application run as a recurring service that never completes. The paper's
// 600-second detection scenarios keep the victim application running for
// the whole run; the finite WorkSeconds is used only by the
// performance-overhead experiments that measure completion times.
func (s Spec) Service() Spec {
	s.WorkSeconds = 0
	return s
}

// Validate reports whether the spec is well-formed.
func (s Spec) Validate() error {
	if s.Name == "" || s.Abbrev == "" {
		return fmt.Errorf("workload: spec missing name/abbrev: %+v", s)
	}
	if s.BaseAccessRate <= 0 {
		return fmt.Errorf("workload %s: non-positive base access rate", s.Name)
	}
	if s.BaseMissRatio < 0 || s.BaseMissRatio > 1 {
		return fmt.Errorf("workload %s: miss ratio %v outside [0,1]", s.Name, s.BaseMissRatio)
	}
	if s.Periodic && s.PeriodSec <= 0 {
		return fmt.Errorf("workload %s: periodic with non-positive period", s.Name)
	}
	for i, p := range s.Phases {
		if p.AccessFactor <= 0 || p.DwellMean <= 0 {
			return fmt.Errorf("workload %s: invalid phase %d: %+v", s.Name, i, p)
		}
	}
	return nil
}

// Instance is a running application model. It is not safe for concurrent
// use.
type Instance struct {
	spec Spec
	rng  *sim.RNG

	// work is the accumulated work phase in work-seconds.
	work float64
	// phaseIdx / phaseLeft track the regime chain.
	phaseIdx  int
	phaseLeft float64
}

// New instantiates the spec with its own RNG stream.
func (s Spec) New(rng *sim.RNG) (*Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	in := &Instance{spec: s, rng: rng}
	if len(s.Phases) > 0 {
		in.phaseIdx = rng.Intn(len(s.Phases))
		in.phaseLeft = rng.Exponential(s.Phases[in.phaseIdx].DwellMean)
	}
	return in, nil
}

// MustNew is New but panics on an invalid spec.
func (s Spec) MustNew(rng *sim.RNG) *Instance {
	in, err := s.New(rng)
	if err != nil {
		panic(err)
	}
	return in
}

// Spec returns the instance's static description.
func (in *Instance) Spec() Spec { return in.spec }

// phase returns the current regime phase (a neutral phase when the spec has
// none).
func (in *Instance) phase() Phase {
	if len(in.spec.Phases) == 0 {
		return Phase{AccessFactor: 1, MissFactor: 1, DwellMean: 1}
	}
	return in.spec.Phases[in.phaseIdx]
}

// waveform returns the periodic modulation factor at the current work
// phase: 1 for non-periodic applications, a raised cosine batch pattern
// otherwise.
func (in *Instance) waveform() float64 {
	if !in.spec.Periodic {
		return 1
	}
	frac := in.work / in.spec.PeriodSec
	frac -= float64(int64(frac))
	// Raised cosine: peaks mid-batch (compute burst), dips at batch
	// boundaries (I/O, weight update).
	return 1 - in.spec.Amplitude*math.Cos(2*math.Pi*frac)
}

// Demand returns the application's intrinsic memory demand for a step of
// dt simulated seconds: the number of LLC accesses it would issue if
// unimpeded, and the intrinsic miss ratio for those accesses. The demand
// is evaluated at the *current* work phase; callers then report how much
// of the demand was actually delivered via Advance.
func (in *Instance) Demand(dt float64) (accesses, missRatio float64) {
	if dt <= 0 {
		panic(fmt.Sprintf("workload: non-positive dt %v", dt))
	}
	p := in.phase()
	rate := in.spec.BaseAccessRate * p.AccessFactor * in.waveform()
	noise := 1 + in.rng.Normal(0, in.spec.NoiseFrac)
	if noise < 0.05 {
		noise = 0.05
	}
	accesses = rate * dt * noise
	missRatio = in.spec.BaseMissRatio * p.MissFactor
	if missRatio > 1 {
		missRatio = 1
	}
	return accesses, missRatio
}

// Advance progresses the application by dt wall-seconds executed at the
// given speed in [0, 1] (1 = unimpeded). Work phase, regime chain and the
// periodic waveform all advance by dt*speed work-seconds, so a slowed
// application stretches its pattern in wall time.
func (in *Instance) Advance(dt, speed float64) {
	if speed < 0 {
		speed = 0
	}
	if speed > 1 {
		speed = 1
	}
	w := dt * speed
	in.work += w
	if len(in.spec.Phases) == 0 {
		return
	}
	in.phaseLeft -= w
	for in.phaseLeft <= 0 {
		in.phaseIdx = in.nextPhase()
		in.phaseLeft += in.rng.Exponential(in.spec.Phases[in.phaseIdx].DwellMean)
	}
}

// nextPhase picks a uniformly random phase different from the current one
// (or the same one when only one exists).
func (in *Instance) nextPhase() int {
	n := len(in.spec.Phases)
	if n == 1 {
		return 0
	}
	next := in.rng.Intn(n - 1)
	if next >= in.phaseIdx {
		next++
	}
	return next
}

// Work returns accumulated work in work-seconds.
func (in *Instance) Work() float64 { return in.work }

// Done reports whether a finite application has completed its work.
func (in *Instance) Done() bool {
	return in.spec.WorkSeconds > 0 && in.work >= in.spec.WorkSeconds
}
