package workload

import (
	"math"
	"testing"

	"memdos/internal/period"
	"memdos/internal/sim"
	"memdos/internal/stats"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"BA", "SVM", "KM", "PCA", "TS", "Aggre", "Join", "Scan", "PR", "FN"}
	got := Abbrevs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d apps, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("app %d = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestAllSpecsValid(t *testing.T) {
	for _, s := range All() {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %s invalid: %v", s.Abbrev, err)
		}
	}
}

func TestPeriodicApps(t *testing.T) {
	got := PeriodicAbbrevs()
	if len(got) != 2 || got[0] != "FN" || got[1] != "PCA" {
		t.Errorf("periodic apps = %v, want [FN PCA]", got)
	}
}

func TestByAbbrev(t *testing.T) {
	s, err := ByAbbrev("TS")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "TeraSort" {
		t.Errorf("TS resolves to %q", s.Name)
	}
	if _, err := ByAbbrev("NOPE"); err == nil {
		t.Error("unknown abbrev should error")
	}
}

func TestMustByAbbrevPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustByAbbrev did not panic")
		}
	}()
	MustByAbbrev("NOPE")
}

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{},
		{Name: "x", Abbrev: "x"}, // no rate
		{Name: "x", Abbrev: "x", BaseAccessRate: 1, BaseMissRatio: 2},    // bad ratio
		{Name: "x", Abbrev: "x", BaseAccessRate: 1, Periodic: true},      // no period
		{Name: "x", Abbrev: "x", BaseAccessRate: 1, Phases: []Phase{{}}}, // bad phase
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
		if _, err := s.New(sim.NewRNG(1)); err == nil {
			t.Errorf("bad spec %d instantiated", i)
		}
	}
}

// collect runs an instance at the given speed and returns per-10ms
// delivered access samples (demand * speed, mirroring the VM layer).
func collect(in *Instance, seconds, speed float64) []float64 {
	const dt = 0.01
	n := int(seconds / dt)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		d, _ := in.Demand(dt)
		out[i] = d * speed
		in.Advance(dt, speed)
	}
	return out
}

func TestDemandPositive(t *testing.T) {
	for _, s := range All() {
		in := s.MustNew(sim.NewRNG(7))
		for i := 0; i < 1000; i++ {
			a, m := in.Demand(0.01)
			if a <= 0 {
				t.Fatalf("%s: non-positive demand %v", s.Abbrev, a)
			}
			if m < 0 || m > 1 {
				t.Fatalf("%s: miss ratio %v outside [0,1]", s.Abbrev, m)
			}
			in.Advance(0.01, 1)
		}
	}
}

func TestDemandMeanNearBase(t *testing.T) {
	for _, s := range All() {
		in := s.MustNew(sim.NewRNG(8))
		samples := collect(in, 120, 1)
		mean := stats.Mean(samples)
		// Expected per-sample demand is roughly BaseAccessRate*0.01
		// (phase factors average near 1 by construction).
		want := s.BaseAccessRate * 0.01
		if mean < 0.5*want || mean > 1.6*want {
			t.Errorf("%s: mean sample %v far from base %v", s.Abbrev, mean, want)
		}
	}
}

func TestPeriodicAppsShowPeriod(t *testing.T) {
	for _, abbrev := range []string{"PCA", "FN"} {
		s := MustByAbbrev(abbrev)
		in := s.MustNew(sim.NewRNG(9))
		raw := collect(in, 120, 1)
		ma := stats.MA(raw, 200, 50) // one MA value per 0.5 s
		est := period.NewEstimator(period.DefaultEstimatorConfig()).Estimate(ma)
		if !est.Periodic {
			t.Fatalf("%s: no period detected", abbrev)
		}
		wantMA := s.PeriodSec / 0.5 // period in MA samples
		if math.Abs(est.Period-wantMA) > wantMA*0.2 {
			t.Errorf("%s: period = %v MA samples, want ~%v", abbrev, est.Period, wantMA)
		}
	}
}

func TestFaceNetPaperPeriod(t *testing.T) {
	// Fig. 8: FaceNet's period is ~17 MA windows (W=200, dW=50, 10ms).
	s := MustByAbbrev("FN")
	in := s.MustNew(sim.NewRNG(10))
	raw := collect(in, 120, 1)
	ma := stats.MA(raw, 200, 50)
	est := period.NewEstimator(period.DefaultEstimatorConfig()).Estimate(ma)
	if !est.Periodic || math.Abs(est.Period-17) > 3 {
		t.Errorf("FN period = %+v, want ~17 MA windows", est)
	}
}

func TestSlowdownStretchesPeriod(t *testing.T) {
	// Observation (2): a slowed periodic app shows an elongated period.
	s := MustByAbbrev("FN")
	fast := s.MustNew(sim.NewRNG(11))
	slow := s.MustNew(sim.NewRNG(11))
	estimator := period.NewEstimator(period.DefaultEstimatorConfig())
	pFast := estimator.Estimate(stats.MA(collect(fast, 120, 1), 200, 50))
	pSlow := estimator.Estimate(stats.MA(collect(slow, 200, 0.5), 200, 50))
	if !pFast.Periodic || !pSlow.Periodic {
		t.Fatalf("periodicity lost: %+v %+v", pFast, pSlow)
	}
	ratio := pSlow.Period / pFast.Period
	if ratio < 1.5 || ratio > 2.8 {
		t.Errorf("half-speed period ratio = %v, want ~2", ratio)
	}
}

func TestNonPeriodicAppsNoStablePeriod(t *testing.T) {
	// KM is the steadiest non-periodic app; the estimator should not find
	// a *consistent* strong period across independent runs.
	s := MustByAbbrev("KM")
	estimator := period.NewEstimator(period.DefaultEstimatorConfig())
	found := 0
	for seed := uint64(0); seed < 5; seed++ {
		in := s.MustNew(sim.NewRNG(100 + seed))
		ma := stats.MA(collect(in, 120, 1), 200, 50)
		if est := estimator.Estimate(ma); est.Periodic && est.Correlation > 0.5 {
			found++
		}
	}
	if found > 2 {
		t.Errorf("KM shows a strong period in %d/5 runs", found)
	}
}

func TestAdvanceProgressesWork(t *testing.T) {
	s := MustByAbbrev("BA")
	in := s.MustNew(sim.NewRNG(12))
	in.Advance(10, 1)
	if in.Work() != 10 {
		t.Errorf("work = %v, want 10", in.Work())
	}
	in.Advance(10, 0.5)
	if in.Work() != 15 {
		t.Errorf("work = %v, want 15", in.Work())
	}
	// Speed clamps.
	in.Advance(1, 2)
	if in.Work() != 16 {
		t.Errorf("work = %v, want 16 (speed clamped to 1)", in.Work())
	}
	in.Advance(1, -3)
	if in.Work() != 16 {
		t.Errorf("work = %v, want 16 (speed clamped to 0)", in.Work())
	}
}

func TestDone(t *testing.T) {
	s := Spec{Name: "t", Abbrev: "t", BaseAccessRate: 1, WorkSeconds: 5}
	in := s.MustNew(sim.NewRNG(13))
	if in.Done() {
		t.Error("fresh instance done")
	}
	in.Advance(5, 1)
	if !in.Done() {
		t.Error("instance not done after its work")
	}
	// Indefinite app never completes.
	svc := Spec{Name: "s", Abbrev: "s", BaseAccessRate: 1}
	si := svc.MustNew(sim.NewRNG(14))
	si.Advance(1e6, 1)
	if si.Done() {
		t.Error("indefinite app reported done")
	}
}

func TestRegimeChainVisitsAllPhases(t *testing.T) {
	s := MustByAbbrev("TS")
	in := s.MustNew(sim.NewRNG(15))
	seen := make(map[int]bool)
	for i := 0; i < 60000; i++ {
		in.Advance(0.01, 1)
		seen[in.phaseIdx] = true
	}
	if len(seen) != len(s.Phases) {
		t.Errorf("visited %d phases of %d", len(seen), len(s.Phases))
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	s := MustByAbbrev("PR")
	a := s.MustNew(sim.NewRNG(42))
	b := s.MustNew(sim.NewRNG(42))
	for i := 0; i < 1000; i++ {
		da, _ := a.Demand(0.01)
		db, _ := b.Demand(0.01)
		if da != db {
			t.Fatalf("same-seed instances diverged at step %d", i)
		}
		a.Advance(0.01, 1)
		b.Advance(0.01, 1)
	}
}

func TestDemandPanicsOnBadDt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Demand(0) did not panic")
		}
	}()
	MustByAbbrev("BA").MustNew(sim.NewRNG(1)).Demand(0)
}

func TestBuilderHappyPath(t *testing.T) {
	spec, err := NewBuilder("My service", "SVC").
		AccessRate(1.5e6).
		MissRatio(0.09).
		Noise(0.1).
		Phase(1.0, 1.0, 6).
		Phase(0.7, 1.3, 4).
		Runtime(90).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "My service" || len(spec.Phases) != 2 || spec.WorkSeconds != 90 {
		t.Errorf("built spec = %+v", spec)
	}
	in := spec.MustNew(sim.NewRNG(1))
	a, m := in.Demand(0.01)
	if a <= 0 || m <= 0 {
		t.Errorf("built spec demand = %v, %v", a, m)
	}
}

func TestBuilderPeriodic(t *testing.T) {
	spec, err := NewBuilder("Batchy", "B").
		AccessRate(1e6).
		Periodic(5, 0.3).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if !spec.Periodic || spec.PeriodSec != 5 {
		t.Errorf("spec = %+v", spec)
	}
}

func TestBuilderValidates(t *testing.T) {
	if _, err := NewBuilder("x", "x").Build(); err == nil {
		t.Error("builder accepted spec without access rate")
	}
	if _, err := NewBuilder("x", "x").AccessRate(1).Phase(0, 0, 0).Build(); err == nil {
		t.Error("builder accepted invalid phase")
	}
}

func TestDynamicSpec(t *testing.T) {
	spec := Dynamic()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(spec.Phases) != 3 || spec.WorkSeconds != 0 {
		t.Errorf("dynamic spec = %+v", spec)
	}
}

func TestUtilitySpec(t *testing.T) {
	if err := Utility().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestServiceClearsWork(t *testing.T) {
	s := MustByAbbrev("KM")
	if s.Service().WorkSeconds != 0 {
		t.Error("Service() did not clear WorkSeconds")
	}
	if s.WorkSeconds == 0 {
		t.Error("Service() mutated the original")
	}
}
