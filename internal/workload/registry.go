package workload

import (
	"fmt"
	"sort"
)

// The ten applications of the paper's measurement study (Table II), with
// regime chains calibrated so that (a) the no-attack KStest false-alarm
// rates of Section III-B emerge (TS/PCA ~60%, FN ~55%, Aggre/Join/Scan
// ~40%, SVM ~35%, BA/PR ~30%, KM ~20%) and (b) the qualitative trace
// shapes of Figs. 2-6 are reproduced. Access rates are in accesses per
// work-second at the PCM sampling granularity used throughout (so an app
// with rate 2e6 shows ~2e4 accesses per 10 ms sample).
var specs = []Spec{
	{
		Name: "Bayesian Classification", Abbrev: "BA",
		BaseAccessRate: 1.8e6, BaseMissRatio: 0.08, NoiseFrac: 0.1,
		Phases: []Phase{
			{AccessFactor: 1.0, MissFactor: 1.0, DwellMean: 5},
			{AccessFactor: 0.968, MissFactor: 1.0, DwellMean: 4},
			{AccessFactor: 1.032, MissFactor: 1.0, DwellMean: 4},
		},
		WorkSeconds: 180,
	},
	{
		Name: "Support Vector Machine", Abbrev: "SVM",
		BaseAccessRate: 2.2e6, BaseMissRatio: 0.06, NoiseFrac: 0.1,
		Phases: []Phase{
			{AccessFactor: 1.0, MissFactor: 1.0, DwellMean: 5},
			{AccessFactor: 0.967, MissFactor: 1.0, DwellMean: 4},
			{AccessFactor: 1.033, MissFactor: 1.0, DwellMean: 4},
		},
		WorkSeconds: 200,
	},
	{
		Name: "K-means Clustering", Abbrev: "KM",
		BaseAccessRate: 2.0e6, BaseMissRatio: 0.05, NoiseFrac: 0.1,
		Phases: []Phase{
			{AccessFactor: 1.0, MissFactor: 1.0, DwellMean: 7},
			{AccessFactor: 0.9653, MissFactor: 1.0, DwellMean: 5},
		},
		WorkSeconds: 150,
	},
	{
		Name: "Principal Components Analysis", Abbrev: "PCA",
		BaseAccessRate: 1.6e6, BaseMissRatio: 0.07, NoiseFrac: 0.10,
		Periodic: true, PeriodSec: 6.9, Amplitude: 0.105,
		WorkSeconds: 160,
	},
	{
		Name: "TeraSort", Abbrev: "TS",
		BaseAccessRate: 2.6e6, BaseMissRatio: 0.12, NoiseFrac: 0.12,
		Phases: []Phase{
			{AccessFactor: 1.0, MissFactor: 1.0, DwellMean: 6},    // map
			{AccessFactor: 0.9465, MissFactor: 1.0, DwellMean: 5}, // shuffle
			{AccessFactor: 1.0535, MissFactor: 1.0, DwellMean: 5}, // reduce
		},
		WorkSeconds: 240,
	},
	{
		Name: "Hive Aggregation", Abbrev: "Aggre",
		BaseAccessRate: 1.9e6, BaseMissRatio: 0.09, NoiseFrac: 0.1,
		Phases: []Phase{
			{AccessFactor: 1.0, MissFactor: 1.0, DwellMean: 5},
			{AccessFactor: 0.965, MissFactor: 1.0, DwellMean: 4},
			{AccessFactor: 1.035, MissFactor: 1.0, DwellMean: 4},
		},
		WorkSeconds: 120,
	},
	{
		Name: "Hive Join", Abbrev: "Join",
		BaseAccessRate: 2.1e6, BaseMissRatio: 0.10, NoiseFrac: 0.1,
		Phases: []Phase{
			{AccessFactor: 1.0, MissFactor: 1.0, DwellMean: 5},
			{AccessFactor: 0.965, MissFactor: 1.0, DwellMean: 4},
			{AccessFactor: 1.035, MissFactor: 1.0, DwellMean: 4},
		},
		WorkSeconds: 140,
	},
	{
		Name: "Hive Scan", Abbrev: "Scan",
		BaseAccessRate: 2.4e6, BaseMissRatio: 0.14, NoiseFrac: 0.1,
		Phases: []Phase{
			{AccessFactor: 1.0, MissFactor: 1.0, DwellMean: 5},
			{AccessFactor: 0.965, MissFactor: 1.0, DwellMean: 4},
			{AccessFactor: 1.035, MissFactor: 1.0, DwellMean: 4},
		},
		WorkSeconds: 100,
	},
	{
		Name: "PageRank", Abbrev: "PR",
		BaseAccessRate: 2.0e6, BaseMissRatio: 0.11, NoiseFrac: 0.09,
		Phases: []Phase{
			{AccessFactor: 1.0, MissFactor: 1.0, DwellMean: 6},
			{AccessFactor: 0.9739, MissFactor: 1.0, DwellMean: 5},
			{AccessFactor: 1.0261, MissFactor: 1.0, DwellMean: 5},
		},
		WorkSeconds: 170,
	},
	{
		Name: "FaceNet", Abbrev: "FN",
		BaseAccessRate: 1.7e6, BaseMissRatio: 0.06, NoiseFrac: 0.12,
		Periodic: true, PeriodSec: 8.5, Amplitude: 0.115,
		WorkSeconds: 300,
	},
}

// Utility returns the spec of the light background workload run by the
// seven benign co-located VMs in the paper's testbed (Linux utilities such
// as sysstat and dstat): low, steady memory demand.
func Utility() Spec {
	return Spec{
		Name: "Linux utilities", Abbrev: "UTIL",
		BaseAccessRate: 2e5, BaseMissRatio: 0.03, NoiseFrac: 0.15,
	}
}

// Dynamic returns a synthetic "dynamic application" whose demand level
// shifts drastically between long-lived phases — the kind of workload the
// paper's future work (Section VIII) targets: its counter levels change so
// much that SDS/B's single profiled range cannot cover them without either
// false positives (phases outside the range) or false negatives (a range
// wide enough to swallow the attacks). It exercises the SDS/U extension.
func Dynamic() Spec {
	return Spec{
		Name: "Dynamic service", Abbrev: "DYN",
		BaseAccessRate: 2.0e6, BaseMissRatio: 0.08, NoiseFrac: 0.10,
		Phases: []Phase{
			{AccessFactor: 1.0, MissFactor: 1.0, DwellMean: 30},
			{AccessFactor: 0.5, MissFactor: 1.0, DwellMean: 25},
			{AccessFactor: 1.7, MissFactor: 1.0, DwellMean: 25},
		},
	}
}

// All returns the specs of all ten applications in a stable order.
func All() []Spec {
	out := make([]Spec, len(specs))
	copy(out, specs)
	return out
}

// Abbrevs returns the Table II abbreviations in registry order.
func Abbrevs() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Abbrev
	}
	return out
}

// PeriodicAbbrevs returns the abbreviations of the periodic applications
// (PCA and FN in the paper).
func PeriodicAbbrevs() []string {
	var out []string
	for _, s := range specs {
		if s.Periodic {
			out = append(out, s.Abbrev)
		}
	}
	sort.Strings(out)
	return out
}

// ByAbbrev returns the spec with the given Table II abbreviation.
func ByAbbrev(abbrev string) (Spec, error) {
	for _, s := range specs {
		if s.Abbrev == abbrev {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown application %q (known: %v)", abbrev, Abbrevs())
}

// MustByAbbrev is ByAbbrev but panics on unknown abbreviations.
func MustByAbbrev(abbrev string) Spec {
	s, err := ByAbbrev(abbrev)
	if err != nil {
		panic(err)
	}
	return s
}
