package workload

// Builder constructs custom application Specs fluently — the path for
// adopters modelling their own workloads rather than the paper's ten. All
// methods return the builder for chaining; Build validates the result.
//
//	spec, err := workload.NewBuilder("My service", "SVC").
//		AccessRate(1.5e6).
//		MissRatio(0.09).
//		Noise(0.1).
//		Phase(1.0, 1.0, 6).
//		Phase(0.7, 1.3, 4).
//		Build()
type Builder struct {
	spec Spec
}

// NewBuilder starts a spec with the given name and abbreviation.
func NewBuilder(name, abbrev string) *Builder {
	return &Builder{spec: Spec{Name: name, Abbrev: abbrev}}
}

// AccessRate sets the base LLC access demand in accesses per work-second.
func (b *Builder) AccessRate(rate float64) *Builder {
	b.spec.BaseAccessRate = rate
	return b
}

// MissRatio sets the intrinsic LLC miss ratio.
func (b *Builder) MissRatio(ratio float64) *Builder {
	b.spec.BaseMissRatio = ratio
	return b
}

// Noise sets the per-sample multiplicative noise fraction.
func (b *Builder) Noise(frac float64) *Builder {
	b.spec.NoiseFrac = frac
	return b
}

// Periodic declares a batch-periodic access pattern with the given period
// (work-seconds) and modulation amplitude.
func (b *Builder) Periodic(periodSec, amplitude float64) *Builder {
	b.spec.Periodic = true
	b.spec.PeriodSec = periodSec
	b.spec.Amplitude = amplitude
	return b
}

// Phase appends one regime-chain phase.
func (b *Builder) Phase(accessFactor, missFactor, dwellMean float64) *Builder {
	b.spec.Phases = append(b.spec.Phases, Phase{
		AccessFactor: accessFactor,
		MissFactor:   missFactor,
		DwellMean:    dwellMean,
	})
	return b
}

// Runtime sets the nominal completion time (0 = runs forever).
func (b *Builder) Runtime(workSeconds float64) *Builder {
	b.spec.WorkSeconds = workSeconds
	return b
}

// Build validates and returns the spec.
func (b *Builder) Build() (Spec, error) {
	if err := b.spec.Validate(); err != nil {
		return Spec{}, err
	}
	return b.spec, nil
}
