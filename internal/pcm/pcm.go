// Package pcm emulates the Processor Counter Monitor tool the paper runs on
// the hypervisor: it aggregates each VM's LLC accesses and misses into one
// (AccessNum, MissNum) sample every T_PCM seconds (0.01 s in the paper).
// Every detection scheme in this repository consumes these samples and
// nothing else, mirroring the paper's threat model in which the detector
// sees only hardware counters.
package pcm

import (
	"fmt"
	"math"

	"memdos/internal/trace"
)

// Sample is one PCM observation.
type Sample struct {
	// Time is the simulated timestamp at the *end* of the sampling
	// interval.
	Time float64
	// AccessNum is the number of LLC accesses during the interval.
	AccessNum float64
	// MissNum is the number of LLC misses during the interval.
	MissNum float64
	// BWBytes is the DRAM traffic delivered to the VM during the interval
	// in bytes (PCM's memory-bandwidth counters). Zero when the host runs
	// without a memory-controller model.
	BWBytes float64
	// AvgLatency is the average per-line DRAM latency over the interval in
	// seconds, or zero when no lines were delivered (or no memory model).
	AvgLatency float64
}

// Counter aggregates one VM's per-tick access/miss counts into PCM samples.
type Counter struct {
	tpcm        float64
	ticksPer    int
	tickCount   int
	accessAccum float64
	missAccum   float64
	// count is the number of completed samples. It is tracked separately
	// from the series length so a counter can run with history retention
	// off (see SetRetainHistory) without losing its sample timeline.
	count        int
	retain       bool
	accessSeries *trace.Series
	missSeries   *trace.Series
	// DRAM accumulators fed by AddMem between Observe completions. The
	// latency average is delivered-line weighted, so latAccum holds the
	// weighted sum and lineAccum the weight.
	bwAccum   float64
	latAccum  float64
	lineAccum float64
}

// NewCounter returns a counter sampling every tpcm seconds for a simulation
// advancing in steps of dt seconds. tpcm must be a (near-)integer multiple
// of dt.
func NewCounter(name string, tpcm, dt float64) (*Counter, error) {
	if tpcm <= 0 || dt <= 0 {
		return nil, fmt.Errorf("pcm: non-positive tpcm %v or dt %v", tpcm, dt)
	}
	ratio := tpcm / dt
	ticks := int(math.Round(ratio))
	// The tolerance is relative to the ratio: an absolute epsilon would
	// reject valid large tpcm/dt ratios whose float division error alone
	// exceeds it.
	if ticks < 1 || math.Abs(ratio-float64(ticks)) > 1e-9*ratio {
		return nil, fmt.Errorf("pcm: tpcm %v is not an integer multiple of dt %v", tpcm, dt)
	}
	return &Counter{
		tpcm:         tpcm,
		ticksPer:     ticks,
		retain:       true,
		accessSeries: trace.NewSeries(name+".access", tpcm, tpcm),
		missSeries:   trace.NewSeries(name+".miss", tpcm, tpcm),
	}, nil
}

// MustNewCounter is NewCounter but panics on invalid arguments.
func MustNewCounter(name string, tpcm, dt float64) *Counter {
	c, err := NewCounter(name, tpcm, dt)
	if err != nil {
		panic(err)
	}
	return c
}

// TPCM returns the sampling interval.
func (c *Counter) TPCM() float64 { return c.tpcm }

// SetRetainHistory toggles series retention. With retention off (the
// datacenter simulator's setting, where thousands of VMs would otherwise
// accumulate unbounded history) completed samples are still produced
// with correct timestamps, but AccessSeries/MissSeries stop growing.
// Turning retention back on resumes recording from the current time; the
// series' earlier gap is not backfilled, so mixed-retention series
// should not be used for figure traces.
func (c *Counter) SetRetainHistory(on bool) { c.retain = on }

// AddMem records one simulation tick's worth of DRAM traffic: bytes
// delivered, the delivered-line-weighted latency sum in seconds, and the
// line count carrying that weight. Hosts without a memory model simply
// never call it, leaving the bandwidth fields of every sample zero.
func (c *Counter) AddMem(bytes, latencySum, lines float64) {
	if bytes < 0 || latencySum < 0 || lines < 0 {
		panic(fmt.Sprintf("pcm: negative DRAM accounting %v/%v/%v", bytes, latencySum, lines))
	}
	c.bwAccum += bytes
	c.latAccum += latencySum
	c.lineAccum += lines
}

// Observe records one simulation tick's worth of accesses and misses. When
// the tick completes a sampling interval, Observe returns the finished
// sample and true.
func (c *Counter) Observe(accesses, misses float64) (Sample, bool) {
	if accesses < 0 || misses < 0 {
		panic(fmt.Sprintf("pcm: negative counts %v/%v", accesses, misses))
	}
	c.accessAccum += accesses
	c.missAccum += misses
	c.tickCount++
	if c.tickCount < c.ticksPer {
		return Sample{}, false
	}
	// The sample timeline starts at tpcm with interval tpcm, so the
	// completed-sample count gives this sample's end-of-interval
	// timestamp directly (equal to accessSeries.End() while retention is
	// on, but independent of it so retention-off counters keep time).
	s := Sample{
		Time:      c.tpcm + float64(c.count)*c.tpcm,
		AccessNum: c.accessAccum,
		MissNum:   c.missAccum,
		BWBytes:   c.bwAccum,
	}
	if c.lineAccum > 0 {
		s.AvgLatency = c.latAccum / c.lineAccum
	}
	if c.retain {
		c.accessSeries.Append(s.AccessNum)
		c.missSeries.Append(s.MissNum)
	}
	c.count++
	c.accessAccum, c.missAccum, c.tickCount = 0, 0, 0
	c.bwAccum, c.latAccum, c.lineAccum = 0, 0, 0
	return s, true
}

// SkipToSample fast-forwards the counter to n completed samples without
// observing anything: a migrated VM's counter rejoining a destination
// host whose clock is ahead (transit downtime) skips the samples it
// never produced, so its timeline stays aligned with wall time. Retained
// series record zeros for the skipped interval. Any partial-interval
// accumulation is dropped. Skipping backwards is a no-op.
func (c *Counter) SkipToSample(n int) {
	if n <= c.count {
		return
	}
	if c.retain {
		for i := c.count; i < n; i++ {
			c.accessSeries.Append(0)
			c.missSeries.Append(0)
		}
	}
	c.count = n
	c.accessAccum, c.missAccum, c.tickCount = 0, 0, 0
	c.bwAccum, c.latAccum, c.lineAccum = 0, 0, 0
}

// AccessSeries returns the full AccessNum series recorded so far. The
// returned series is live; callers must not mutate it.
func (c *Counter) AccessSeries() *trace.Series { return c.accessSeries }

// MissSeries returns the full MissNum series recorded so far. The returned
// series is live; callers must not mutate it.
func (c *Counter) MissSeries() *trace.Series { return c.missSeries }

// Samples returns the number of completed samples (including any not
// retained in the series).
func (c *Counter) Samples() int { return c.count }
