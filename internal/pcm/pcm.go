// Package pcm emulates the Processor Counter Monitor tool the paper runs on
// the hypervisor: it aggregates each VM's LLC accesses and misses into one
// (AccessNum, MissNum) sample every T_PCM seconds (0.01 s in the paper).
// Every detection scheme in this repository consumes these samples and
// nothing else, mirroring the paper's threat model in which the detector
// sees only hardware counters.
package pcm

import (
	"fmt"
	"math"

	"memdos/internal/trace"
)

// Sample is one PCM observation.
type Sample struct {
	// Time is the simulated timestamp at the *end* of the sampling
	// interval.
	Time float64
	// AccessNum is the number of LLC accesses during the interval.
	AccessNum float64
	// MissNum is the number of LLC misses during the interval.
	MissNum float64
}

// Counter aggregates one VM's per-tick access/miss counts into PCM samples.
type Counter struct {
	tpcm         float64
	ticksPer     int
	tickCount    int
	accessAccum  float64
	missAccum    float64
	accessSeries *trace.Series
	missSeries   *trace.Series
}

// NewCounter returns a counter sampling every tpcm seconds for a simulation
// advancing in steps of dt seconds. tpcm must be a (near-)integer multiple
// of dt.
func NewCounter(name string, tpcm, dt float64) (*Counter, error) {
	if tpcm <= 0 || dt <= 0 {
		return nil, fmt.Errorf("pcm: non-positive tpcm %v or dt %v", tpcm, dt)
	}
	ratio := tpcm / dt
	ticks := int(math.Round(ratio))
	// The tolerance is relative to the ratio: an absolute epsilon would
	// reject valid large tpcm/dt ratios whose float division error alone
	// exceeds it.
	if ticks < 1 || math.Abs(ratio-float64(ticks)) > 1e-9*ratio {
		return nil, fmt.Errorf("pcm: tpcm %v is not an integer multiple of dt %v", tpcm, dt)
	}
	return &Counter{
		tpcm:         tpcm,
		ticksPer:     ticks,
		accessSeries: trace.NewSeries(name+".access", tpcm, tpcm),
		missSeries:   trace.NewSeries(name+".miss", tpcm, tpcm),
	}, nil
}

// MustNewCounter is NewCounter but panics on invalid arguments.
func MustNewCounter(name string, tpcm, dt float64) *Counter {
	c, err := NewCounter(name, tpcm, dt)
	if err != nil {
		panic(err)
	}
	return c
}

// TPCM returns the sampling interval.
func (c *Counter) TPCM() float64 { return c.tpcm }

// Observe records one simulation tick's worth of accesses and misses. When
// the tick completes a sampling interval, Observe returns the finished
// sample and true.
func (c *Counter) Observe(accesses, misses float64) (Sample, bool) {
	if accesses < 0 || misses < 0 {
		panic(fmt.Sprintf("pcm: negative counts %v/%v", accesses, misses))
	}
	c.accessAccum += accesses
	c.missAccum += misses
	c.tickCount++
	if c.tickCount < c.ticksPer {
		return Sample{}, false
	}
	// The series starts at tpcm with interval tpcm, so End() before the
	// append is exactly this sample's end-of-interval timestamp.
	s := Sample{
		Time:      c.accessSeries.End(),
		AccessNum: c.accessAccum,
		MissNum:   c.missAccum,
	}
	c.accessSeries.Append(s.AccessNum)
	c.missSeries.Append(s.MissNum)
	c.accessAccum, c.missAccum, c.tickCount = 0, 0, 0
	return s, true
}

// AccessSeries returns the full AccessNum series recorded so far. The
// returned series is live; callers must not mutate it.
func (c *Counter) AccessSeries() *trace.Series { return c.accessSeries }

// MissSeries returns the full MissNum series recorded so far. The returned
// series is live; callers must not mutate it.
func (c *Counter) MissSeries() *trace.Series { return c.missSeries }

// Samples returns the number of completed samples.
func (c *Counter) Samples() int { return c.accessSeries.Len() }
