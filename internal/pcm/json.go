package pcm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// sampleJSON is the wire form of a Sample. Pointer fields distinguish a
// missing key from an explicit zero, so ingestion can reject partial
// samples instead of silently defaulting counters to 0.
type sampleJSON struct {
	Time      *float64 `json:"t"`
	AccessNum *float64 `json:"access"`
	MissNum   *float64 `json:"miss"`
}

// Validate reports whether the sample is a usable counter observation:
// every field finite and both counters non-negative. Detectors assume
// these invariants (NaN would poison every EWMA downstream), so network
// ingestion paths must call this before Push.
func (s Sample) Validate() error {
	switch {
	case math.IsNaN(s.Time) || math.IsInf(s.Time, 0):
		return fmt.Errorf("pcm: non-finite sample time %v", s.Time)
	case math.IsNaN(s.AccessNum) || math.IsInf(s.AccessNum, 0):
		return fmt.Errorf("pcm: non-finite AccessNum %v", s.AccessNum)
	case math.IsNaN(s.MissNum) || math.IsInf(s.MissNum, 0):
		return fmt.Errorf("pcm: non-finite MissNum %v", s.MissNum)
	case s.AccessNum < 0 || s.MissNum < 0:
		return fmt.Errorf("pcm: negative counters %v/%v", s.AccessNum, s.MissNum)
	}
	return nil
}

// MarshalJSON encodes the sample as {"t":..,"access":..,"miss":..}. A
// sample that fails Validate (NaN/Inf values) refuses to encode.
func (s Sample) MarshalJSON() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(sampleJSON{Time: &s.Time, AccessNum: &s.AccessNum, MissNum: &s.MissNum})
}

// UnmarshalJSON decodes and validates a sample. All three fields are
// required, unknown fields are rejected, and the decoded sample must pass
// Validate — a malformed or hostile payload yields an error, never a
// detector-poisoning sample.
func (s *Sample) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w sampleJSON
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("pcm: bad sample: %w", err)
	}
	if w.Time == nil || w.AccessNum == nil || w.MissNum == nil {
		return fmt.Errorf("pcm: sample missing required field (t/access/miss)")
	}
	out := Sample{Time: *w.Time, AccessNum: *w.AccessNum, MissNum: *w.MissNum}
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}
