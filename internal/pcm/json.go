package pcm

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// sampleJSON is the wire form of a Sample. Pointer fields distinguish a
// missing key from an explicit zero, so ingestion can reject partial
// samples instead of silently defaulting counters to 0. The DRAM fields
// bw/lat arrived after the 3-field format shipped and are therefore
// optional on decode (absent = 0), keeping old producers valid.
type sampleJSON struct {
	Time       *float64 `json:"t"`
	AccessNum  *float64 `json:"access"`
	MissNum    *float64 `json:"miss"`
	BWBytes    *float64 `json:"bw,omitempty"`
	AvgLatency *float64 `json:"lat,omitempty"`
}

// Validate reports whether the sample is a usable counter observation:
// every field finite and both counters non-negative. Detectors assume
// these invariants (NaN would poison every EWMA downstream), so network
// ingestion paths must call this before Push.
func (s Sample) Validate() error {
	switch {
	case math.IsNaN(s.Time) || math.IsInf(s.Time, 0):
		return fmt.Errorf("pcm: non-finite sample time %v", s.Time)
	case math.IsNaN(s.AccessNum) || math.IsInf(s.AccessNum, 0):
		return fmt.Errorf("pcm: non-finite AccessNum %v", s.AccessNum)
	case math.IsNaN(s.MissNum) || math.IsInf(s.MissNum, 0):
		return fmt.Errorf("pcm: non-finite MissNum %v", s.MissNum)
	case s.AccessNum < 0 || s.MissNum < 0:
		return fmt.Errorf("pcm: negative counters %v/%v", s.AccessNum, s.MissNum)
	case math.IsNaN(s.BWBytes) || math.IsInf(s.BWBytes, 0):
		return fmt.Errorf("pcm: non-finite BWBytes %v", s.BWBytes)
	case math.IsNaN(s.AvgLatency) || math.IsInf(s.AvgLatency, 0):
		return fmt.Errorf("pcm: non-finite AvgLatency %v", s.AvgLatency)
	case s.BWBytes < 0 || s.AvgLatency < 0:
		return fmt.Errorf("pcm: negative DRAM counters %v/%v", s.BWBytes, s.AvgLatency)
	}
	return nil
}

// MarshalJSON encodes the sample as {"t":..,"access":..,"miss":..} plus
// "bw"/"lat" when either DRAM field is non-zero (zero-valued DRAM fields
// are elided so memory-model-free producers keep emitting the original
// 3-field form byte for byte). A sample that fails Validate (NaN/Inf
// values) refuses to encode.
func (s Sample) MarshalJSON() ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w := sampleJSON{Time: &s.Time, AccessNum: &s.AccessNum, MissNum: &s.MissNum}
	if s.BWBytes != 0 || s.AvgLatency != 0 { //memdos:ignore floateq exact zero elides the optional wire fields
		w.BWBytes, w.AvgLatency = &s.BWBytes, &s.AvgLatency
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes and validates a sample. All three fields are
// required, unknown fields are rejected, and the decoded sample must pass
// Validate — a malformed or hostile payload yields an error, never a
// detector-poisoning sample.
func (s *Sample) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var w sampleJSON
	if err := dec.Decode(&w); err != nil {
		return fmt.Errorf("pcm: bad sample: %w", err)
	}
	if w.Time == nil || w.AccessNum == nil || w.MissNum == nil {
		return fmt.Errorf("pcm: sample missing required field (t/access/miss)")
	}
	out := Sample{Time: *w.Time, AccessNum: *w.AccessNum, MissNum: *w.MissNum}
	if w.BWBytes != nil {
		out.BWBytes = *w.BWBytes
	}
	if w.AvgLatency != nil {
		out.AvgLatency = *w.AvgLatency
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*s = out
	return nil
}
