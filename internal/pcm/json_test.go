package pcm

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestSampleJSONRoundTrip(t *testing.T) {
	in := Sample{Time: 1.25, AccessNum: 120.5, MissNum: 8}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"t":`, `"access":`, `"miss":`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("wire form %s missing %s", b, key)
		}
	}
	var out Sample
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: %+v -> %+v", in, out)
	}

	// Slices of samples round-trip too (the ingest wire format).
	batch := []Sample{{Time: 1, AccessNum: 2, MissNum: 3}, {Time: 2, AccessNum: 4, MissNum: 5}}
	bb, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	var back []Sample
	if err := json.Unmarshal(bb, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(batch, back) {
		t.Errorf("batch round trip: %v -> %v", batch, back)
	}
}

func TestSampleJSONRejects(t *testing.T) {
	cases := []string{
		`{"t":1,"access":2}`,                    // missing miss
		`{"access":2,"miss":3}`,                 // missing t
		`{"t":1,"access":2,"miss":3,"extra":4}`, // unknown field
		`{"t":1,"access":-2,"miss":3}`,          // negative counter
		`{"t":1,"access":1e999,"miss":3}`,       // +Inf after parse
		`{"t":"now","access":2,"miss":3}`,       // wrong type
		`[1,2,3]`,                               // not an object
	}
	for _, c := range cases {
		var s Sample
		if err := json.Unmarshal([]byte(c), &s); err == nil {
			t.Errorf("accepted %s as %+v", c, s)
		}
	}
}

func TestSampleMarshalRejectsNonFinite(t *testing.T) {
	for _, s := range []Sample{
		{Time: math.NaN(), AccessNum: 1, MissNum: 1},
		{Time: 1, AccessNum: math.Inf(1), MissNum: 1},
		{Time: 1, AccessNum: 1, MissNum: math.Inf(-1)},
	} {
		if _, err := json.Marshal(s); err == nil {
			t.Errorf("marshalled non-finite sample %+v", s)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := (Sample{Time: 0, AccessNum: 0, MissNum: 0}).Validate(); err != nil {
		t.Errorf("zero sample rejected: %v", err)
	}
	if err := (Sample{Time: -1, AccessNum: 1, MissNum: 1}).Validate(); err != nil {
		t.Errorf("negative time is legal (relative clocks): %v", err)
	}
	if err := (Sample{AccessNum: -0.001}).Validate(); err == nil {
		t.Error("negative AccessNum accepted")
	}
	if err := (Sample{MissNum: math.NaN()}).Validate(); err == nil {
		t.Error("NaN MissNum accepted")
	}
}

// TestCounterLargeRatioTolerance is the regression test for the sampling
// tolerance fix: at large tick ratios (fine tick, coarse sample) the old
// absolute 1e-9 comparison spuriously rejected exact multiples because
// the float division error scales with the ratio itself.
func TestCounterLargeRatioTolerance(t *testing.T) {
	// 0.007/1e-8 = 7e5 ticks per sample; representable only to ~1e-11
	// relative error, far above an absolute 1e-9 at this magnitude.
	c, err := NewCounter("large", 0.007, 1e-8)
	if err != nil {
		t.Fatalf("large exact ratio rejected: %v", err)
	}
	if c.ticksPer != 700000 {
		t.Fatalf("ticks per sample = %d", c.ticksPer)
	}
	// Genuine non-multiples must still fail.
	if _, err := NewCounter("bad", 0.01, 0.003); err == nil {
		t.Error("non-multiple ratio accepted")
	}
	// A ratio off by ~1% is rejected even at large magnitude.
	if _, err := NewCounter("bad2", 0.00707, 1e-8); err != nil {
		// 707000 is an exact multiple — this must be accepted.
		t.Errorf("exact multiple 707000 rejected: %v", err)
	}
}

// TestSampleJSONBackCompat is the regression test for the bw/lat wire
// extension: samples produced before the DRAM fields existed (3-field
// form) must still decode, with the missing fields reading as zero; a
// zero-DRAM sample must still *encode* to the old 3-field form.
func TestSampleJSONBackCompat(t *testing.T) {
	var s Sample
	if err := json.Unmarshal([]byte(`{"t":1.25,"access":120,"miss":8}`), &s); err != nil {
		t.Fatalf("legacy 3-field sample rejected: %v", err)
	}
	if s.BWBytes != 0 || s.AvgLatency != 0 {
		t.Fatalf("legacy sample grew DRAM fields: %+v", s)
	}
	b, err := json.Marshal(Sample{Time: 1, AccessNum: 2, MissNum: 3})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), `"bw"`) || strings.Contains(string(b), `"lat"`) {
		t.Fatalf("zero-DRAM sample emits new fields: %s", b)
	}
}

func TestSampleJSONDRAMFields(t *testing.T) {
	in := Sample{Time: 2.5, AccessNum: 10, MissNum: 4, BWBytes: 6.4e7, AvgLatency: 3.2e-8}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"bw":`, `"lat":`} {
		if !strings.Contains(string(b), key) {
			t.Errorf("wire form %s missing %s", b, key)
		}
	}
	var out Sample
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip: %+v -> %+v", in, out)
	}
	// Hostile DRAM values are rejected on decode and on Validate.
	for _, c := range []string{
		`{"t":1,"access":2,"miss":3,"bw":-1}`,
		`{"t":1,"access":2,"miss":3,"lat":-1e-9}`,
		`{"t":1,"access":2,"miss":3,"bw":1e999}`,
	} {
		var s Sample
		if err := json.Unmarshal([]byte(c), &s); err == nil {
			t.Errorf("accepted %s as %+v", c, s)
		}
	}
	if err := (Sample{BWBytes: math.NaN()}).Validate(); err == nil {
		t.Error("NaN BWBytes accepted")
	}
	if err := (Sample{AvgLatency: math.Inf(1)}).Validate(); err == nil {
		t.Error("Inf AvgLatency accepted")
	}
}
