package pcm

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/bits"
	"testing"
)

// FuzzDecodeBatchInto drives the network-facing binary frame decoder:
// arbitrary bodies must never panic, and every accepted frame must
// contain only validated samples that re-encode to a frame decoding
// back to the same batch (encode/decode are exact inverses on the
// accepted set).
func FuzzDecodeBatchInto(f *testing.F) {
	// A well-formed 5-field frame, built through the real encoder.
	good, err := AppendBatch(nil, "vm-1", []Sample{
		{Time: 0.01, AccessNum: 120, MissNum: 8},
		{Time: 0.02, AccessNum: 117, MissNum: 9, BWBytes: 6.4e7, AvgLatency: 3.2e-8},
	})
	if err != nil {
		f.Fatal(err)
	}
	goodBody := good[FramePrefixBytes:]

	// A legacy 3-field frame and a future 7-field frame, hand-rolled.
	handFrame := func(fields uint64, session string, vals ...float64) []byte {
		b := []byte{BinaryVersion}
		b = binary.AppendUvarint(b, fields)
		b = binary.AppendUvarint(b, uint64(len(session)))
		b = append(b, session...)
		b = binary.AppendUvarint(b, uint64(len(vals))/fields)
		for _, v := range vals {
			b = binary.AppendUvarint(b, bits.ReverseBytes64(math.Float64bits(v)))
		}
		return b
	}
	seeds := [][]byte{
		goodBody,
		goodBody[:len(goodBody)-1],                       // truncated field
		goodBody[:1],                                     // version byte only
		goodBody[:7],                                     // truncated session
		append([]byte{2}, goodBody[1:]...),               // version skew
		append([]byte{0}, goodBody[1:]...),               // version zero
		handFrame(3, "vm-old", 0.01, 120, 8),             // legacy 3-field producer
		handFrame(7, "vm-new", 0.01, 120, 8, 1, 2, 3, 4), // appended fields
		handFrame(5, "vm-1", 0.01, math.NaN(), 8, 0, 0),  // NaN counter
		handFrame(5, "vm-1", 0.01, -120, 8, 0, 0),        // negative counter
		handFrame(5, "a/b", 0.01, 120, 8, 0, 0),          // bad session byte
		{BinaryVersion},
		{BinaryVersion, 2},    // too few fields
		{BinaryVersion, 0xff}, // too many fields
		{},
	}
	// A sample-count lie: header says 1000 samples, body has one.
	lie := []byte{BinaryVersion}
	lie = binary.AppendUvarint(lie, 3)
	lie = binary.AppendUvarint(lie, 4)
	lie = append(lie, "vm-1"...)
	lie = binary.AppendUvarint(lie, 1000)
	lie = binary.AppendUvarint(lie, bits.ReverseBytes64(math.Float64bits(0.01)))
	seeds = append(seeds, lie)

	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body []byte) {
		dst := make([]Sample, 0, 8)
		session, samples, err := DecodeBatchInto(dst, body)
		if err != nil {
			return
		}
		if len(samples) == 0 {
			t.Fatal("accepted frame with no samples")
		}
		if err := validFrameSession(string(session)); err != nil {
			t.Fatalf("accepted bad session %q: %v", session, err)
		}
		for i, s := range samples {
			if err := s.Validate(); err != nil {
				t.Fatalf("accepted invalid sample %d %+v: %v", i, s, err)
			}
		}
		// Re-encode and decode again: the batch must survive bit-exactly.
		wire, err := AppendBatch(nil, string(session), samples)
		if err != nil {
			t.Fatalf("accepted batch refuses to re-encode: %v", err)
		}
		session2, again, err := DecodeBatchInto(nil, wire[FramePrefixBytes:])
		if err != nil {
			t.Fatalf("re-encoded frame refuses to decode: %v", err)
		}
		if !bytes.Equal(session, session2) || len(again) != len(samples) {
			t.Fatalf("round trip changed shape: %q/%d -> %q/%d", session, len(samples), session2, len(again))
		}
		for i := range samples {
			if samples[i] != again[i] {
				t.Fatalf("round trip changed sample %d: %+v -> %+v", i, samples[i], again[i])
			}
		}
	})
}
