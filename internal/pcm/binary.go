package pcm

// This file is the compact binary wire codec for Sample batches: the
// fleet-scale alternative to the JSON ingest format in json.go. One
// *frame* carries one session's batch:
//
//	frame   := length(4 bytes, little-endian uint32 of the body size) body
//	body    := version(1 byte)
//	           fieldCount(uvarint)
//	           sessionLen(uvarint) session(bytes)
//	           sampleCount(uvarint)
//	           sampleCount x fieldCount field(uvarint)
//	field   := uvarint( bits.ReverseBytes64( math.Float64bits(value) ) )
//
// Fields are the Sample struct members in declaration order: Time,
// AccessNum, MissNum, BWBytes, AvgLatency. Byte-reversing the IEEE-754
// bit pattern moves the sign/exponent bytes to the low end and the
// (usually zero) mantissa tail to the high end, so typical counter
// values — small-magnitude floats with short mantissas — encode in 2-4
// varint bytes instead of 8, losslessly.
//
// Evolution rules (see DESIGN.md "Binary ingest wire format"):
//
//   - New fields are only ever APPENDED to the sample field list; the
//     writer's fieldCount declares how many it wrote.
//   - A reader decodes the fields it knows (min(fieldCount, 5) today)
//     and skips the rest, so old readers accept new producers.
//   - fieldCount >= 3 is required: Time/AccessNum/MissNum predate the
//     DRAM counters, and 3-field frames from legacy producers decode
//     with BWBytes/AvgLatency zero — exactly like the 3-field JSON form.
//   - The version byte only changes when the frame *layout* changes
//     (something appending fields cannot express); readers reject
//     versions they do not know outright.
//
// The decoder is strict the same way the JSON path is: oversized
// lengths, truncated bodies, trailing bytes, non-finite or negative
// counters and malformed session names are all errors, never panics
// (FuzzDecodeBatchInto enforces this).

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/bits"
)

const (
	// BinaryVersion is the frame layout version this package writes.
	BinaryVersion = 1
	// FramePrefixBytes is the size of the length prefix in front of
	// every frame body.
	FramePrefixBytes = 4
	// MaxFrameBytes bounds one frame body on the wire; FrameReader and
	// DecodeBatchInto reject anything larger before buffering it.
	MaxFrameBytes = 4 << 20
	// MaxFrameSamples bounds the samples in one frame.
	MaxFrameSamples = 1 << 16
	// binaryFieldCount is how many fields per sample version-1 writers
	// emit (the full Sample struct).
	binaryFieldCount = 5
	// maxFieldCount caps the declared per-sample field count a decoder
	// will skip past: generous headroom for future appended fields,
	// tight enough that a hostile count cannot make decode quadratic.
	maxFieldCount = 16
	// maxFrameSession mirrors the stream package's session-id bound.
	maxFrameSession = 128
)

// AppendBatch appends one complete frame — length prefix included — for
// session's samples to dst and returns the extended slice. It allocates
// only when dst lacks capacity, so a producer reusing its buffer
// encodes at zero allocations steady state. Samples must pass Validate
// and the session name must satisfy the same rules the stream package
// enforces; refusing here keeps unsendable frames from ever reaching a
// socket.
//
//memdos:hotpath
func AppendBatch(dst []byte, session string, samples []Sample) ([]byte, error) {
	if err := validFrameSession(session); err != nil {
		return dst, err
	}
	if len(samples) == 0 {
		return dst, fmt.Errorf("pcm: empty sample batch")
	}
	if len(samples) > MaxFrameSamples {
		return dst, fmt.Errorf("pcm: batch of %d samples exceeds %d per frame", len(samples), MaxFrameSamples)
	}
	for i := range samples {
		if err := samples[i].Validate(); err != nil {
			return dst, fmt.Errorf("pcm: sample %d: %w", i, err)
		}
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length prefix, patched below
	dst = append(dst, BinaryVersion)
	dst = binary.AppendUvarint(dst, binaryFieldCount)
	dst = binary.AppendUvarint(dst, uint64(len(session)))
	dst = append(dst, session...)
	dst = binary.AppendUvarint(dst, uint64(len(samples)))
	for i := range samples {
		s := &samples[i]
		dst = appendFloatField(dst, s.Time)
		dst = appendFloatField(dst, s.AccessNum)
		dst = appendFloatField(dst, s.MissNum)
		dst = appendFloatField(dst, s.BWBytes)
		dst = appendFloatField(dst, s.AvgLatency)
	}
	body := len(dst) - start - FramePrefixBytes
	if body > MaxFrameBytes {
		return dst[:start], fmt.Errorf("pcm: frame body %d bytes exceeds %d", body, MaxFrameBytes)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(body))
	return dst, nil
}

// appendFloatField varint-encodes one float64 losslessly (see the
// package comment for why the bit pattern is byte-reversed first).
func appendFloatField(dst []byte, v float64) []byte {
	return binary.AppendUvarint(dst, bits.ReverseBytes64(math.Float64bits(v)))
}

// DecodeBatchInto decodes one frame *body* (the bytes after the length
// prefix, e.g. as returned by FrameReader.Next). Samples are appended
// to dst — pass a slice with spare capacity (typically the previous
// call's result re-sliced to [:0]) and the decode allocates nothing.
// The returned session aliases body and is only valid while body is;
// callers that outlive the buffer must copy it.
//
//memdos:hotpath bench=ingest/decode-batch
func DecodeBatchInto(dst []Sample, body []byte) (session []byte, samples []Sample, err error) {
	if len(body) == 0 {
		return nil, dst, fmt.Errorf("pcm: empty frame body")
	}
	if body[0] != BinaryVersion {
		return nil, dst, fmt.Errorf("pcm: unknown frame version %d (reader supports %d)", body[0], BinaryVersion)
	}
	p := body[1:]
	fieldCount, p, err := decodeUvarint(p, "field count")
	if err != nil {
		return nil, dst, err
	}
	if fieldCount < 3 || fieldCount > maxFieldCount {
		return nil, dst, fmt.Errorf("pcm: frame declares %d fields per sample (want 3-%d)", fieldCount, maxFieldCount)
	}
	sessLen, p, err := decodeUvarint(p, "session length")
	if err != nil {
		return nil, dst, err
	}
	if sessLen == 0 || sessLen > maxFrameSession {
		return nil, dst, fmt.Errorf("pcm: frame session length %d (want 1-%d)", sessLen, maxFrameSession)
	}
	if uint64(len(p)) < sessLen {
		return nil, dst, fmt.Errorf("pcm: truncated frame session")
	}
	session, p = p[:sessLen], p[sessLen:]
	if err := validFrameSessionBytes(session); err != nil {
		return nil, dst, err
	}
	count, p, err := decodeUvarint(p, "sample count")
	if err != nil {
		return nil, dst, err
	}
	if count == 0 || count > MaxFrameSamples {
		return nil, dst, fmt.Errorf("pcm: frame sample count %d (want 1-%d)", count, MaxFrameSamples)
	}
	samples = dst
	for i := uint64(0); i < count; i++ {
		var s Sample
		for f := uint64(0); f < fieldCount; f++ {
			var v float64
			v, p, err = decodeFloatField(p)
			if err != nil {
				return nil, dst, fmt.Errorf("pcm: sample %d: %w", i, err)
			}
			switch f {
			case 0:
				s.Time = v
			case 1:
				s.AccessNum = v
			case 2:
				s.MissNum = v
			case 3:
				s.BWBytes = v
			case 4:
				s.AvgLatency = v
				// Fields beyond the fifth were appended by a newer
				// producer: decoded (to advance p) and dropped.
			}
		}
		if err := s.Validate(); err != nil {
			return nil, dst, fmt.Errorf("pcm: sample %d: %w", i, err)
		}
		samples = append(samples, s)
	}
	if len(p) != 0 {
		return nil, dst, fmt.Errorf("pcm: %d trailing bytes after frame samples", len(p))
	}
	return session, samples, nil
}

// decodeUvarint reads one uvarint, naming the field in errors.
func decodeUvarint(p []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, fmt.Errorf("pcm: truncated or overlong %s varint", what)
	}
	return v, p[n:], nil
}

// decodeFloatField reverses appendFloatField.
func decodeFloatField(p []byte) (float64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, fmt.Errorf("pcm: truncated or overlong field varint")
	}
	return math.Float64frombits(bits.ReverseBytes64(v)), p[n:], nil
}

// validFrameSession mirrors the stream package's session-id rules so a
// frame that encodes cannot be refused downstream: 1-128 bytes, no
// control characters, spaces, '/', '"' or DEL (the id is used as a map
// key, URL path element and metric label).
func validFrameSession(id string) error {
	if id == "" || len(id) > maxFrameSession {
		return fmt.Errorf("pcm: frame session id must be 1-%d bytes", maxFrameSession)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c < 0x21 || c == 0x7f || c == '/' || c == '"' {
			return fmt.Errorf("pcm: frame session id %q contains forbidden byte %q", id, c)
		}
	}
	return nil
}

// validFrameSessionBytes is validFrameSession for a decoded byte view,
// kept separate so the hot decode path never converts to string.
func validFrameSessionBytes(id []byte) error {
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c < 0x21 || c == 0x7f || c == '/' || c == '"' {
			return fmt.Errorf("pcm: frame session id %q contains forbidden byte %q", id, c)
		}
	}
	return nil
}

// FrameReader reads length-prefixed frames off a byte stream (a
// persistent ingest connection) into one internal buffer that is reused
// across frames: steady state, Next performs no allocations. The
// returned body is valid only until the next call.
type FrameReader struct {
	r   io.Reader
	hdr [FramePrefixBytes]byte
	buf []byte
	max int
}

// NewFrameReader wraps r; maxFrame <= 0 means MaxFrameBytes.
func NewFrameReader(r io.Reader, maxFrame int) *FrameReader {
	if maxFrame <= 0 || maxFrame > MaxFrameBytes {
		maxFrame = MaxFrameBytes
	}
	return &FrameReader{r: r, max: maxFrame}
}

// Reset points the reader at a new stream, keeping the grown buffer.
func (fr *FrameReader) Reset(r io.Reader) { fr.r = r }

// Next returns the next frame body. A clean end of stream — EOF exactly
// on a frame boundary — returns io.EOF; EOF inside a frame is an error,
// so a producer that dies mid-frame is never mistaken for a clean close.
//
//memdos:hotpath
func (fr *FrameReader) Next() ([]byte, error) {
	if _, err := io.ReadFull(fr.r, fr.hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pcm: truncated frame prefix: %w", err)
		}
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(fr.hdr[:]))
	if n == 0 || n > fr.max {
		return nil, fmt.Errorf("pcm: frame body of %d bytes (want 1-%d)", n, fr.max)
	}
	if cap(fr.buf) < n {
		fr.buf = make([]byte, n) //memdos:ignore hotalloc grow-once frame buffer: capacity sticks to the largest frame seen; TestDecodeBatchIntoZeroAlloc pins the warmed steady state
	}
	body := fr.buf[:n]
	if _, err := io.ReadFull(fr.r, body); err != nil {
		return nil, fmt.Errorf("pcm: truncated frame body: %w", err)
	}
	return body, nil
}
