package pcm

import (
	"math"
	"testing"
)

func TestCounterValidation(t *testing.T) {
	if _, err := NewCounter("x", 0, 0.01); err == nil {
		t.Error("tpcm=0 accepted")
	}
	if _, err := NewCounter("x", 0.01, 0); err == nil {
		t.Error("dt=0 accepted")
	}
	if _, err := NewCounter("x", 0.01, 0.003); err == nil {
		t.Error("non-integer tick ratio accepted")
	}
	if _, err := NewCounter("x", 0.01, 0.01); err != nil {
		t.Errorf("1:1 ratio rejected: %v", err)
	}
}

func TestMustNewCounterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MustNewCounter("x", 0, 0)
}

func TestOneTickPerSample(t *testing.T) {
	c := MustNewCounter("vm", 0.01, 0.01)
	s, ok := c.Observe(100, 10)
	if !ok {
		t.Fatal("sample not emitted at tick boundary")
	}
	if s.AccessNum != 100 || s.MissNum != 10 {
		t.Errorf("sample = %+v", s)
	}
	if math.Abs(s.Time-0.01) > 1e-12 {
		t.Errorf("first sample time = %v, want 0.01", s.Time)
	}
}

func TestAggregationAcrossTicks(t *testing.T) {
	c := MustNewCounter("vm", 0.01, 0.002) // 5 ticks per sample
	for i := 0; i < 4; i++ {
		if _, ok := c.Observe(10, 1); ok {
			t.Fatal("sample emitted early")
		}
	}
	s, ok := c.Observe(10, 1)
	if !ok {
		t.Fatal("sample not emitted after 5 ticks")
	}
	if s.AccessNum != 50 || s.MissNum != 5 {
		t.Errorf("aggregated sample = %+v", s)
	}
}

func TestAccumulatorsResetBetweenSamples(t *testing.T) {
	c := MustNewCounter("vm", 0.01, 0.01)
	c.Observe(100, 10)
	s, _ := c.Observe(7, 3)
	if s.AccessNum != 7 || s.MissNum != 3 {
		t.Errorf("second sample = %+v, accumulators leaked", s)
	}
}

func TestSampleTimestamps(t *testing.T) {
	c := MustNewCounter("vm", 0.01, 0.01)
	for i := 1; i <= 10; i++ {
		s, ok := c.Observe(1, 0)
		if !ok {
			t.Fatal("no sample")
		}
		if want := float64(i) * 0.01; math.Abs(s.Time-want) > 1e-9 {
			t.Errorf("sample %d time = %v, want %v", i, s.Time, want)
		}
	}
}

func TestSeriesRecorded(t *testing.T) {
	c := MustNewCounter("vm", 0.01, 0.01)
	for i := 0; i < 20; i++ {
		c.Observe(float64(i), float64(i)/2)
	}
	if c.Samples() != 20 {
		t.Fatalf("samples = %d", c.Samples())
	}
	acc, miss := c.AccessSeries(), c.MissSeries()
	if acc.Name != "vm.access" || miss.Name != "vm.miss" {
		t.Errorf("series names %q %q", acc.Name, miss.Name)
	}
	if acc.Values[5] != 5 || miss.Values[5] != 2.5 {
		t.Errorf("series values wrong: %v %v", acc.Values[5], miss.Values[5])
	}
	if acc.Interval != 0.01 {
		t.Errorf("interval = %v", acc.Interval)
	}
}

func TestNegativeCountsPanic(t *testing.T) {
	c := MustNewCounter("vm", 0.01, 0.01)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative counts")
		}
	}()
	c.Observe(-1, 0)
}

func TestTPCM(t *testing.T) {
	if got := MustNewCounter("vm", 0.05, 0.01).TPCM(); got != 0.05 {
		t.Errorf("TPCM = %v", got)
	}
}

func TestAddMemFoldsIntoSample(t *testing.T) {
	c := MustNewCounter("mem", 0.02, 0.01)
	c.AddMem(1000, 2e-7, 10)
	c.Observe(1, 0)
	c.AddMem(3000, 6e-7, 30)
	s, done := c.Observe(1, 0)
	if !done {
		t.Fatal("sample not completed")
	}
	if s.BWBytes != 4000 {
		t.Fatalf("BWBytes = %v, want 4000", s.BWBytes)
	}
	if want := 8e-7 / 40; s.AvgLatency != want {
		t.Fatalf("AvgLatency = %v, want %v", s.AvgLatency, want)
	}
	// Accumulators reset: a DRAM-idle interval reads zero.
	s, done = c.Observe(1, 0)
	if done {
		t.Fatal("early sample")
	}
	s, done = c.Observe(1, 0)
	if !done || s.BWBytes != 0 || s.AvgLatency != 0 {
		t.Fatalf("DRAM accumulators leaked across samples: %+v (done=%v)", s, done)
	}
}

func TestAddMemNegativePanics(t *testing.T) {
	c := MustNewCounter("mem", 0.01, 0.01)
	for i, fn := range []func(){
		func() { c.AddMem(-1, 0, 0) },
		func() { c.AddMem(0, -1, 0) },
		func() { c.AddMem(0, 0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: negative AddMem did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestSkipToSampleDropsDRAMAccum(t *testing.T) {
	c := MustNewCounter("mem", 0.01, 0.01)
	c.AddMem(5000, 1e-7, 5)
	c.SkipToSample(3)
	s, done := c.Observe(1, 0)
	if !done || s.BWBytes != 0 || s.AvgLatency != 0 {
		t.Fatalf("skip kept partial DRAM accumulation: %+v (done=%v)", s, done)
	}
}
