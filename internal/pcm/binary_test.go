package pcm

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"math/rand"
	"strings"
	"testing"
)

// randomBatch builds n valid samples with the full counter set, mixing
// "nice" values (integral counters, the common case the varint packing
// targets) with awkward full-mantissa floats.
func randomBatch(rng *rand.Rand, n int) []Sample {
	out := make([]Sample, n)
	t := rng.Float64()
	for i := range out {
		t += 0.01
		s := Sample{
			Time:      t,
			AccessNum: float64(rng.Intn(1_000_000)),
			MissNum:   float64(rng.Intn(100_000)),
		}
		if rng.Intn(2) == 0 {
			s.AccessNum += rng.Float64() // full-mantissa path
			s.MissNum *= rng.Float64()
		}
		if rng.Intn(3) == 0 {
			s.BWBytes = float64(rng.Intn(1 << 30))
			s.AvgLatency = rng.Float64() * 1e-6
		}
		out[i] = s
	}
	return out
}

// encodeFrame is a test helper: one batch, one frame, body only.
func encodeFrame(t *testing.T, session string, samples []Sample) []byte {
	t.Helper()
	frame, err := AppendBatch(nil, session, samples)
	if err != nil {
		t.Fatal(err)
	}
	return frame[FramePrefixBytes:]
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var dst []Sample
	for trial := 0; trial < 50; trial++ {
		in := randomBatch(rng, 1+rng.Intn(200))
		body := encodeFrame(t, "vm-roundtrip", in)
		session, out, err := DecodeBatchInto(dst[:0], body)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		dst = out
		if string(session) != "vm-roundtrip" {
			t.Fatalf("trial %d: session %q", trial, session)
		}
		if len(out) != len(in) {
			t.Fatalf("trial %d: %d samples, want %d", trial, len(out), len(in))
		}
		for i := range in {
			if out[i] != in[i] {
				t.Fatalf("trial %d sample %d: %+v != %+v", trial, i, out[i], in[i])
			}
		}
	}
}

// TestBinaryMatchesJSON pins codec equivalence: a batch sent through
// the JSON wire form and the same batch sent through the binary wire
// form must decode to bit-identical samples, so the two ingest routes
// feed detectors exactly the same numbers.
func TestBinaryMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		in := randomBatch(rng, 1+rng.Intn(64))

		blob, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		var viaJSON []Sample
		if err := json.Unmarshal(blob, &viaJSON); err != nil {
			t.Fatal(err)
		}

		_, viaBinary, err := DecodeBatchInto(nil, encodeFrame(t, "vm-eq", in))
		if err != nil {
			t.Fatal(err)
		}

		if len(viaJSON) != len(viaBinary) {
			t.Fatalf("trial %d: %d vs %d samples", trial, len(viaJSON), len(viaBinary))
		}
		for i := range viaJSON {
			if viaJSON[i] != viaBinary[i] {
				t.Fatalf("trial %d sample %d: json %+v != binary %+v", trial, i, viaJSON[i], viaBinary[i])
			}
		}
	}
}

// TestBinaryLegacyThreeFieldFrame: a frame declaring 3 fields per
// sample (a producer predating the DRAM counters) decodes with
// BWBytes/AvgLatency zero — the binary analogue of the 3-field JSON
// form staying valid.
func TestBinaryLegacyThreeFieldFrame(t *testing.T) {
	body := []byte{BinaryVersion}
	body = binary.AppendUvarint(body, 3)
	body = binary.AppendUvarint(body, uint64(len("vm-old")))
	body = append(body, "vm-old"...)
	body = binary.AppendUvarint(body, 2)
	for _, s := range [][3]float64{{0.01, 120, 8}, {0.02, 117, 9}} {
		for _, v := range s {
			body = binary.AppendUvarint(body, bits.ReverseBytes64(math.Float64bits(v)))
		}
	}
	session, out, err := DecodeBatchInto(nil, body)
	if err != nil {
		t.Fatal(err)
	}
	if string(session) != "vm-old" || len(out) != 2 {
		t.Fatalf("decoded %q / %d samples", session, len(out))
	}
	want := Sample{Time: 0.01, AccessNum: 120, MissNum: 8}
	if out[0] != want {
		t.Fatalf("legacy sample = %+v, want %+v", out[0], want)
	}
	if out[1].BWBytes != 0 || out[1].AvgLatency != 0 {
		t.Fatalf("legacy sample grew DRAM counters: %+v", out[1])
	}
}

// TestBinarySkipsAppendedFields: a future producer declaring more than
// 5 fields per sample still decodes on today's reader, extra fields
// skipped.
func TestBinarySkipsAppendedFields(t *testing.T) {
	body := []byte{BinaryVersion}
	body = binary.AppendUvarint(body, 7)
	body = binary.AppendUvarint(body, uint64(len("vm-new")))
	body = append(body, "vm-new"...)
	body = binary.AppendUvarint(body, 1)
	for _, v := range []float64{0.01, 120, 8, 6.4e7, 3.2e-8, 42, 43} {
		body = binary.AppendUvarint(body, bits.ReverseBytes64(math.Float64bits(v)))
	}
	_, out, err := DecodeBatchInto(nil, body)
	if err != nil {
		t.Fatal(err)
	}
	want := Sample{Time: 0.01, AccessNum: 120, MissNum: 8, BWBytes: 6.4e7, AvgLatency: 3.2e-8}
	if len(out) != 1 || out[0] != want {
		t.Fatalf("decoded %+v, want %+v", out, want)
	}
}

func TestBinaryDecodeRejects(t *testing.T) {
	good := encodeFrame(t, "vm-1", []Sample{{Time: 0.01, AccessNum: 120, MissNum: 8}})
	versionSkew := append([]byte{BinaryVersion + 1}, good[1:]...)
	trailing := append(append([]byte(nil), good...), 0x00)
	negative := []byte{BinaryVersion}
	negative = binary.AppendUvarint(negative, 3)
	negative = binary.AppendUvarint(negative, 4)
	negative = append(negative, "vm-1"...)
	negative = binary.AppendUvarint(negative, 1)
	for _, v := range []float64{0.01, -5, 8} {
		negative = binary.AppendUvarint(negative, bits.ReverseBytes64(math.Float64bits(v)))
	}
	nan := []byte{BinaryVersion}
	nan = binary.AppendUvarint(nan, 3)
	nan = binary.AppendUvarint(nan, 4)
	nan = append(nan, "vm-1"...)
	nan = binary.AppendUvarint(nan, 1)
	for _, v := range []float64{0.01, math.NaN(), 8} {
		nan = binary.AppendUvarint(nan, bits.ReverseBytes64(math.Float64bits(v)))
	}
	badSession := []byte{BinaryVersion}
	badSession = binary.AppendUvarint(badSession, 3)
	badSession = binary.AppendUvarint(badSession, 4)
	badSession = append(badSession, "a/b\n"...)
	badSession = binary.AppendUvarint(badSession, 1)

	cases := map[string][]byte{
		"empty body":     {},
		"version skew":   versionSkew,
		"truncated":      good[:len(good)-1],
		"header only":    good[:2],
		"trailing bytes": trailing,
		"two fields":     {BinaryVersion, 2},
		"giant fields":   {BinaryVersion, 200},
		"zero samples": func() []byte {
			b := []byte{BinaryVersion}
			b = binary.AppendUvarint(b, 3)
			b = binary.AppendUvarint(b, 4)
			b = append(b, "vm-1"...)
			return binary.AppendUvarint(b, 0)
		}(),
		"negative counter": negative,
		"nan counter":      nan,
		"bad session":      badSession,
	}
	for name, body := range cases {
		if _, _, err := DecodeBatchInto(nil, body); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
}

func TestAppendBatchRejects(t *testing.T) {
	ok := []Sample{{Time: 1, AccessNum: 1, MissNum: 1}}
	if _, err := AppendBatch(nil, "", ok); err == nil {
		t.Error("empty session accepted")
	}
	if _, err := AppendBatch(nil, strings.Repeat("x", 129), ok); err == nil {
		t.Error("oversized session accepted")
	}
	if _, err := AppendBatch(nil, "a b", ok); err == nil {
		t.Error("session with space accepted")
	}
	if _, err := AppendBatch(nil, "vm-1", nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := AppendBatch(nil, "vm-1", []Sample{{Time: math.NaN()}}); err == nil {
		t.Error("NaN sample accepted")
	}
	if _, err := AppendBatch(nil, "vm-1", []Sample{{Time: 1, AccessNum: -2, MissNum: 1}}); err == nil {
		t.Error("negative counter accepted")
	}
}

// TestAppendBatchLeavesPrefixOnError: a failed append must not leave a
// half-written frame in the caller's buffer.
func TestAppendBatchLeavesPrefixOnError(t *testing.T) {
	buf, err := AppendBatch(nil, "vm-1", []Sample{{Time: 1, AccessNum: 2, MissNum: 3}})
	if err != nil {
		t.Fatal(err)
	}
	n := len(buf)
	if buf, err = AppendBatch(buf, "vm-1", []Sample{{Time: math.Inf(1)}}); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if len(buf) != n {
		t.Fatalf("buffer grew to %d on failed append, want %d", len(buf), n)
	}
}

func TestFrameReader(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	batches := [][]Sample{randomBatch(rng, 10), randomBatch(rng, 1), randomBatch(rng, 333)}
	var wire []byte
	var err error
	for i, b := range batches {
		if wire, err = AppendBatch(wire, "vm-stream", b); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}

	fr := NewFrameReader(bytes.NewReader(wire), 0)
	var dst []Sample
	for i, want := range batches {
		body, err := fr.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		_, got, err := DecodeBatchInto(dst[:0], body)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		dst = got
		if len(got) != len(want) {
			t.Fatalf("frame %d: %d samples, want %d", i, len(got), len(want))
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("frame %d sample %d: %+v != %+v", i, j, got[j], want[j])
			}
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	// EOF inside a frame is never a clean close: io.EOF is only
	// legitimate when the stream ends exactly on a frame boundary.
	boundary := map[int]bool{0: true}
	for off := 0; off < len(wire); {
		off += FramePrefixBytes + int(binary.LittleEndian.Uint32(wire[off:]))
		boundary[off] = true
	}
	for cut := 1; cut < len(wire); cut += 97 {
		fr := NewFrameReader(bytes.NewReader(wire[:cut]), 0)
		var err error
		for err == nil {
			_, err = fr.Next()
		}
		if err == io.EOF && !boundary[cut] {
			t.Fatalf("cut %d inside a frame returned clean io.EOF", cut)
		}
	}

	// Oversized frame declared in the prefix is refused before buffering.
	huge := []byte{0xff, 0xff, 0xff, 0x7f}
	if _, err := NewFrameReader(bytes.NewReader(huge), 0).Next(); err == nil || err == io.EOF {
		t.Fatalf("oversized frame: %v", err)
	}
	// Zero-length frame likewise.
	if _, err := NewFrameReader(bytes.NewReader([]byte{0, 0, 0, 0}), 0).Next(); err == nil || err == io.EOF {
		t.Fatalf("zero-length frame: %v", err)
	}
}

// TestDecodeBatchIntoZeroAlloc pins the decode hot path at zero
// allocations steady state (the acceptance bar for the streaming ingest
// route): with a warm destination slice, neither DecodeBatchInto nor
// FrameReader.Next may touch the heap.
func TestDecodeBatchIntoZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	batch := randomBatch(rng, 256)
	wire, err := AppendBatch(nil, "vm-alloc", batch)
	if err != nil {
		t.Fatal(err)
	}
	var rd bytes.Reader
	fr := NewFrameReader(&rd, 0)
	dst := make([]Sample, 0, len(batch))

	// Warm the frame buffer.
	rd.Reset(wire)
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}

	allocs := testing.AllocsPerRun(100, func() {
		rd.Reset(wire)
		body, err := fr.Next()
		if err != nil {
			t.Fatal(err)
		}
		_, out, err := DecodeBatchInto(dst[:0], body)
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != len(batch) {
			t.Fatalf("decoded %d samples", len(out))
		}
	})
	if allocs != 0 {
		t.Fatalf("decode allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestAppendBatchZeroAlloc: the encode side reuses the caller's buffer
// the same way.
func TestAppendBatchZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	batch := randomBatch(rng, 256)
	buf, err := AppendBatch(nil, "vm-alloc", batch)
	if err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := AppendBatch(buf[:0], "vm-alloc", batch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("encode allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkDecodeBatchInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	batch := randomBatch(rng, 64)
	frame, err := AppendBatch(nil, "vm-bench", batch)
	if err != nil {
		b.Fatal(err)
	}
	body := frame[FramePrefixBytes:]
	dst := make([]Sample, 0, len(batch))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out, err := DecodeBatchInto(dst[:0], body)
		if err != nil {
			b.Fatal(err)
		}
		dst = out
	}
}

func BenchmarkAppendBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	batch := randomBatch(rng, 64)
	buf, err := AppendBatch(nil, "vm-bench", batch)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if buf, err = AppendBatch(buf[:0], "vm-bench", batch); err != nil {
			b.Fatal(err)
		}
	}
}
