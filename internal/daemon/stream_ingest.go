package daemon

import (
	"errors"
	"fmt"
	"io"
	"net/http"

	"memdos/internal/pcm"
	"memdos/internal/stream"
)

// maxStreamErrors caps the per-batch error list of one streaming
// request: a producer whose every frame fails (unknown session, closed
// hub) is cut off instead of being allowed to stream garbage forever
// while the daemon buffers an unbounded error list.
const maxStreamErrors = 32

// handleIngestStream is the binary fleet-scale ingest path:
//
//	POST /v1/ingest/stream?profile=raw
//
// The request body is an unbounded sequence of length-prefixed binary
// frames (pcm.AppendBatch wire format) on one persistent connection.
// Each frame carries one session's batch and is applied as soon as it
// arrives — the response (a stream.IngestResponse, like /v1/ingest)
// is written when the producer closes its end of the body.
//
// The whole per-connection decode state — frame buffer, sample slice,
// session-ID intern table — is allocated once and reused for every
// frame, so a long-lived producer costs no steady-state garbage
// (BenchmarkStreamIngest pins allocs/frame).
//
// The optional ?profile= query parameter auto-opens unknown sessions
// with that detector profile on first contact, mirroring the JSON
// route's per-batch "profile" field.
//
// Framing errors (corrupt length prefix, undecodable frame) are fatal
// to the request — the stream cannot be resynchronized — and yield a
// 400 carrying the frame index. Per-batch application errors (unknown
// session, queue policy) are collected like the JSON route's and do not
// stop the stream until maxStreamErrors is reached. A closing hub
// (daemon shutdown) yields 503 so producers know to back off.
//
//memdos:hotpath bench=ingest/stream
func (s *Server) handleIngestStream(w http.ResponseWriter, r *http.Request) {
	profile := r.URL.Query().Get("profile")

	fr := pcm.NewFrameReader(r.Body, pcm.MaxFrameBytes)
	var (
		resp    stream.IngestResponse
		samples []pcm.Sample
		frame   int
		// sessions interns each distinct session ID once so the per-frame
		// lookup is an allocation-free map hit on []byte-keyed string
		// conversion. The value is "" while the session is known-bad
		// (failed auto-open) so repeated frames don't retry the open.
		sessions = make(map[string]string) //memdos:ignore hotalloc per-request setup, amortized over every frame the stream carries
	)
	for {
		body, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("frame %d: %w", frame, err))
			return
		}
		frame++
		sessBytes, batch, err := pcm.DecodeBatchInto(samples[:0], body)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("frame %d: %w", frame, err))
			return
		}
		samples = batch

		sess, seen := sessions[string(sessBytes)] //memdos:ignore hotalloc no real alloc: the compiler elides the conversion for a map lookup keyed string(bytes)
		if !seen {
			sess = string(sessBytes) //memdos:ignore hotalloc interning: one conversion per distinct session for the whole stream
			if profile != "" {
				if err := s.ensureSession(sess, profile); err != nil {
					sessions[sess] = ""
					resp.Errors = append(resp.Errors, fmt.Sprintf("%s: %v", sess, err)) //memdos:ignore hotalloc error collection is the cold path, bounded by maxStreamErrors
					if len(resp.Errors) >= maxStreamErrors {
						s.finishStream(w, resp)
						return
					}
					continue
				}
			}
			sessions[sess] = sess
		} else if sess == "" {
			// Session already failed to open; count the batch against the
			// cap but don't repeat the error message.
			resp.Dropped += len(batch)
			continue
		}

		n, err := s.hub.Ingest(sess, batch)
		if err != nil {
			if errors.Is(err, stream.ErrClosed) {
				writeError(w, http.StatusServiceUnavailable, err)
				return
			}
			resp.Errors = append(resp.Errors, fmt.Sprintf("%s: %v", sess, err)) //memdos:ignore hotalloc error collection is the cold path, bounded by maxStreamErrors
			if len(resp.Errors) >= maxStreamErrors {
				s.finishStream(w, resp)
				return
			}
			continue
		}
		resp.Accepted += n
		resp.Dropped += len(batch) - n
	}
	s.finishStream(w, resp)
}

// finishStream writes the terminal response of a streaming request,
// with the same status rule as the JSON route: all-errors is a 400.
func (s *Server) finishStream(w http.ResponseWriter, resp stream.IngestResponse) {
	status := http.StatusOK
	if resp.Accepted == 0 && len(resp.Errors) > 0 {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp) //memdos:ignore hotalloc one boxed terminal response per streaming request, not per frame
}
