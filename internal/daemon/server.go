// Package daemon is memdosd's serving layer: the HTTP surface that
// wires the multi-tenant streaming hub (internal/stream) — and
// optionally the closed-loop mitigation engine (internal/respond) — to
// sample producers and operators. It lives outside cmd/memdosd so other
// binaries (memdos loadgen's in-process mode, tests) can assemble the
// exact daemon data path without spawning a process.
package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"

	"memdos/internal/metrics"
	"memdos/internal/respond"
	"memdos/internal/stream"
)

// Server wires the streaming hub to the HTTP API:
//
//	POST /v1/ingest        batched JSON samples, many sessions per call
//	POST /v1/ingest/stream persistent binary frame stream (see stream_ingest.go)
//	POST /v1/sessions      open a session {"session":..,"profile":..}
//	GET  /v1/sessions      list all sessions
//	GET  /v1/sessions/{id} one session: detector state, open incidents
//	DELETE /v1/sessions/{id}
//	GET  /v1/responses     mitigation state per session (404 unless -respond)
//	POST /v1/responses/{id}/override  operator pause/resume/force
//	GET  /metrics          Prometheus text exposition of the hub counters
//	GET  /healthz          liveness
//	GET  /debug/pprof/...  live CPU/heap/goroutine profiling (net/http/pprof)
type Server struct {
	hub      *stream.Hub
	eng      *respond.Engine // nil when the daemon runs detection-only
	registry *metrics.Registry
	mux      *http.ServeMux

	// autoOpen serializes concurrent first-contact session creation so
	// two racing ingest requests do not both try to open one session.
	autoOpen sync.Mutex
}

// New assembles the daemon's HTTP handler around hub. eng may be nil
// for a detection-only daemon.
func New(hub *stream.Hub, eng *respond.Engine) *Server {
	s := &Server{hub: hub, eng: eng, registry: metrics.NewRegistry(), mux: http.NewServeMux()}
	hub.RegisterMetrics(s.registry)
	metrics.RegisterRuntimeGC(s.registry)
	if eng != nil {
		eng.RegisterMetrics(s.registry)
	}
	s.mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	s.mux.HandleFunc("POST /v1/ingest/stream", s.handleIngestStream)
	s.mux.HandleFunc("POST /v1/sessions", s.handleOpenSession)
	s.mux.HandleFunc("GET /v1/sessions", s.handleListSessions)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleGetSession)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleCloseSession)
	s.mux.HandleFunc("GET /v1/responses", s.handleListResponses)
	s.mux.HandleFunc("POST /v1/responses/{id}/override", s.handleOverride)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Live profiling of the always-on daemon. The daemon uses a custom mux,
	// so the net/http/pprof handlers are wired explicitly rather than via
	// DefaultServeMux. Operators who expose -addr beyond localhost should
	// front these with the same access controls as /metrics.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()}) //memdos:ignore hotalloc error responses are the cold exit of every handler; the steady ingest path never reaches this
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	// Decode into a pooled request: at a steady ingest rate the batch and
	// sample slices are recycled across requests instead of allocated and
	// collected per call (TestIngestHandlerAllocs pins this).
	req := stream.AcquireIngestRequest()
	defer stream.ReleaseIngestRequest(req)
	if err := stream.DecodeIngestInto(req, http.MaxBytesReader(w, r.Body, stream.MaxIngestBytes)); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var resp stream.IngestResponse
	for _, b := range req.Batches {
		if b.Profile != "" {
			if err := s.ensureSession(b.Session, b.Profile); err != nil {
				resp.Errors = append(resp.Errors, fmt.Sprintf("%s: %v", b.Session, err))
				continue
			}
		}
		n, err := s.hub.Ingest(b.Session, b.Samples)
		if err != nil {
			resp.Errors = append(resp.Errors, fmt.Sprintf("%s: %v", b.Session, err))
			continue
		}
		resp.Accepted += n
		resp.Dropped += len(b.Samples) - n
	}
	status := http.StatusOK
	if resp.Accepted == 0 && len(resp.Errors) > 0 {
		status = http.StatusBadRequest
	}
	writeJSON(w, status, resp)
}

// ensureSession opens the session on first contact; an existing session
// with the same profile is fine, a conflicting profile is an error.
func (s *Server) ensureSession(id, profile string) error {
	if in, ok := s.hub.Session(id); ok {
		if in.Profile != profile {
			return fmt.Errorf("session open with profile %q, request says %q", in.Profile, profile)
		}
		return nil
	}
	s.autoOpen.Lock()
	defer s.autoOpen.Unlock()
	if _, ok := s.hub.Session(id); ok {
		return nil
	}
	return s.hub.Open(id, profile)
}

// OpenSessionRequest is the body of POST /v1/sessions.
type OpenSessionRequest struct {
	Session string `json:"session"`
	Profile string `json:"profile"`
}

func (s *Server) handleOpenSession(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req OpenSessionRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := s.hub.Open(req.Session, req.Profile); err != nil {
		status := http.StatusBadRequest
		if strings.Contains(err.Error(), "already open") {
			status = http.StatusConflict
		}
		writeError(w, status, err)
		return
	}
	in, _ := s.hub.Session(req.Session)
	writeJSON(w, http.StatusCreated, in)
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions": s.hub.Sessions(),
		"profiles": s.hub.Profiles(),
	})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	in, ok := s.hub.Session(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no session %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, in)
}

func (s *Server) handleCloseSession(w http.ResponseWriter, r *http.Request) {
	if err := s.hub.CloseSession(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	if s.eng != nil {
		// Releases any mitigation still applied on the session's behalf.
		s.eng.Forget(r.PathValue("id"))
	}
	writeJSON(w, http.StatusOK, map[string]string{"closed": r.PathValue("id")})
}

func (s *Server) handleListResponses(w http.ResponseWriter, r *http.Request) {
	if s.eng == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("mitigation disabled (start memdosd with -respond)"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ladder":   s.eng.Ladder(),
		"sessions": s.eng.States(),
	})
}

// overrideRequest is the operator override body: mode "pause" releases
// the session's mitigation and ignores its alarms, "resume" returns it to
// automatic policy, "force" pins it at the given ladder rung (level -1 =
// unpin).
type overrideRequest struct {
	Mode  string `json:"mode"`
	Level *int   `json:"level,omitempty"`
}

func (s *Server) handleOverride(w http.ResponseWriter, r *http.Request) {
	if s.eng == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("mitigation disabled (start memdosd with -respond)"))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req overrideRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := r.PathValue("id")
	var st respond.SessionState
	var err error
	switch req.Mode {
	case "pause":
		st, err = s.eng.Pause(id)
	case "resume":
		st, err = s.eng.Resume(id)
	case "force":
		if req.Level == nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf(`mode "force" needs a level`))
			return
		}
		st, err = s.eng.Force(id, *req.Level)
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown mode %q (pause|resume|force)", req.Mode))
		return
	}
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.registry.WriteTo(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
