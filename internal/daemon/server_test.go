package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"memdos/internal/core"
	"memdos/internal/pcm"
	"memdos/internal/respond"
	"memdos/internal/stream"
)

// newTestDaemon assembles the daemon exactly as run() does — hub,
// profiles, HTTP handler — behind an httptest server. The raw detector
// plus a synthetic SDS/B profile keep it fast (no workload profiling).
func newTestDaemon(t *testing.T) (*httptest.Server, *stream.Hub) {
	t.Helper()
	cfg := stream.DefaultConfig()
	cfg.Policy = stream.Block
	hub := stream.NewHub(cfg)
	if err := hub.RegisterProfile("raw", func() (core.Detector, error) {
		return core.NewRawThreshold(0.5)
	}); err != nil {
		t.Fatal(err)
	}
	params := core.DefaultParams()
	params.W, params.DW, params.HC = 20, 10, 2
	prof := core.Profile{AccessMean: 100, AccessStd: 5, MissMean: 10, MissStd: 2}
	if err := hub.RegisterProfile("sdsb:test", func() (core.Detector, error) {
		return core.NewSDSB(prof, params)
	}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(hub, nil))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { hub.Close() })
	return ts, hub
}

// newRespondDaemon is newTestDaemon with the mitigation engine attached,
// the way run() wires it under -respond.
func newRespondDaemon(t *testing.T) (*httptest.Server, *stream.Hub, *respond.Engine) {
	t.Helper()
	cfg := stream.DefaultConfig()
	cfg.Policy = stream.Block
	hub := stream.NewHub(cfg)
	if err := hub.RegisterProfile("raw", func() (core.Detector, error) {
		return core.NewRawThreshold(0.5)
	}); err != nil {
		t.Fatal(err)
	}
	eng, err := respond.New(respond.DefaultConfig(), respond.NewLogActuator())
	if err != nil {
		t.Fatal(err)
	}
	detach := respond.Attach(hub, eng, 64)
	ts := httptest.NewServer(New(hub, eng))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { hub.Close() })
	t.Cleanup(detach)
	return ts, hub, eng
}

func doJSON(t *testing.T, method, url string, body any) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// ingestBody builds a one-session ingest request whose AccessNum
// collapses halfway through (the bus-locking footprint).
func ingestBody(session, profile string, n int, t0 float64) stream.IngestRequest {
	samples := make([]pcm.Sample, n)
	for i := range samples {
		access := 100 + 3*math.Sin(float64(i)/7)
		if i >= n/2 {
			access *= 0.25
		}
		samples[i] = pcm.Sample{Time: t0 + 0.01*float64(i+1), AccessNum: access, MissNum: 10}
	}
	return stream.IngestRequest{Batches: []stream.IngestBatch{{Session: session, Profile: profile, Samples: samples}}}
}

func TestEndToEnd(t *testing.T) {
	ts, hub := newTestDaemon(t)

	// Liveness.
	resp, body := doJSON(t, "GET", ts.URL+"/healthz", nil)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	// Explicit session creation.
	resp, body = doJSON(t, "POST", ts.URL+"/v1/sessions",
		OpenSessionRequest{Session: "vm-alpha", Profile: "sdsb:test"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create session: %d %s", resp.StatusCode, body)
	}
	// Duplicate -> conflict.
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/sessions",
		OpenSessionRequest{Session: "vm-alpha", Profile: "sdsb:test"})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate session: %d", resp.StatusCode)
	}

	// Batched ingest: explicit session + auto-created one in one call.
	req := ingestBody("vm-alpha", "", 600, 0)
	req.Batches = append(req.Batches, ingestBody("vm-beta", "raw", 100, 0).Batches...)
	resp, body = doJSON(t, "POST", ts.URL+"/v1/ingest", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	var ir stream.IngestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 700 || len(ir.Errors) != 0 {
		t.Fatalf("ingest response = %+v", ir)
	}
	if err := hub.Drain(); err != nil {
		t.Fatal(err)
	}

	// Session list.
	resp, body = doJSON(t, "GET", ts.URL+"/v1/sessions", nil)
	var list struct {
		Sessions []stream.SessionInfo `json:"sessions"`
		Profiles []string             `json:"profiles"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(list.Sessions) != 2 || len(list.Profiles) != 2 {
		t.Fatalf("sessions list: %d %+v", resp.StatusCode, list)
	}

	// Per-session state: the attacked half must have raised an incident.
	resp, body = doJSON(t, "GET", ts.URL+"/v1/sessions/vm-alpha", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get session: %d %s", resp.StatusCode, body)
	}
	var in stream.SessionInfo
	if err := json.Unmarshal(body, &in); err != nil {
		t.Fatal(err)
	}
	if in.Ingested != 600 || in.Decisions == 0 {
		t.Fatalf("session info = %+v", in)
	}
	if !in.AlarmActive || len(in.Incidents) == 0 {
		t.Fatalf("attack not reflected: %+v", in)
	}
	if in.State["access_ewma"] == 0 {
		t.Fatalf("no detector state: %+v", in.State)
	}

	// Unknown session -> 404.
	if resp, _ = doJSON(t, "GET", ts.URL+"/v1/sessions/ghost", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost session: %d", resp.StatusCode)
	}

	// Metrics exposition reflects the ingest.
	resp, body = doJSON(t, "GET", ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"memdos_stream_samples_ingested_total 700",
		"memdos_stream_sessions 2",
		"memdos_stream_alarms_raised_total",
		"memdos_stream_queue_depth{shard=",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Close one session over HTTP.
	if resp, _ = doJSON(t, "DELETE", ts.URL+"/v1/sessions/vm-beta", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete session: %d", resp.StatusCode)
	}
	if _, ok := hub.Session("vm-beta"); ok {
		t.Fatal("vm-beta still open")
	}
}

func TestIngestRejectsMalformed(t *testing.T) {
	ts, _ := newTestDaemon(t)
	for _, body := range []string{
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":-3,"miss":1}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1,"access":1e999,"miss":1}]}]}`,
		`{"batches":[{"session":"vm-1","samples":[{"t":1}]}]}`,
		`{"batches":[]}`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Unknown session without a profile: request-level OK is impossible
	// (every batch failed), so 400 with a per-batch error.
	resp, body := doJSON(t, "POST", ts.URL+"/v1/ingest", ingestBody("ghost", "", 10, 0))
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "ghost") {
		t.Errorf("ghost ingest: %d %s", resp.StatusCode, body)
	}
}

// TestGracefulShutdown covers the daemon's drain path: queued samples
// are fully processed by hub.Close even when ingestion stops abruptly.
func TestGracefulShutdown(t *testing.T) {
	ts, hub := newTestDaemon(t)
	resp, body := doJSON(t, "POST", ts.URL+"/v1/ingest", ingestBody("vm-1", "sdsb:test", 2000, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	ts.Close() // listener gone; queued work must still drain
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	in, ok := hub.Session("vm-1")
	if !ok {
		t.Fatal("session vanished")
	}
	if in.Pending != 0 {
		t.Fatalf("pending after Close = %d", in.Pending)
	}
	// W=20, DW=10: 2000 samples -> (2000-20)/10+1 = 199 decisions.
	if in.Decisions != 199 {
		t.Fatalf("decisions after drain = %d, want 199", in.Decisions)
	}
	if !in.AlarmActive || len(in.Incidents) == 0 {
		t.Fatalf("final incident log empty: %+v", in)
	}
}

// TestResponsesDisabled: without -respond the mitigation endpoints are
// absent-by-policy, not routing 404s with empty bodies.
func TestResponsesDisabled(t *testing.T) {
	ts, _ := newTestDaemon(t)
	resp, body := doJSON(t, "GET", ts.URL+"/v1/responses", nil)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), "-respond") {
		t.Errorf("responses list while disabled: %d %s", resp.StatusCode, body)
	}
	resp, _ = doJSON(t, "POST", ts.URL+"/v1/responses/vm-1/override",
		map[string]string{"mode": "pause"})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("override while disabled: %d", resp.StatusCode)
	}
}

// TestResponsesEndpoints drives the full operator surface: an ingest that
// raises an alarm mitigates the session, GET /v1/responses exposes it,
// and overrides pause/force/resume it.
func TestResponsesEndpoints(t *testing.T) {
	ts, hub, eng := newRespondDaemon(t)

	// The raw detector alarms on the AccessNum collapse halfway through.
	resp, body := doJSON(t, "POST", ts.URL+"/v1/ingest", ingestBody("vm-1", "raw", 100, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	if err := hub.Drain(); err != nil {
		t.Fatal(err)
	}
	// The Attach pump is asynchronous: wait for the raise to land.
	waitForLevel := func(want int) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if st, ok := eng.State("vm-1"); ok && st.Level == want {
				return
			}
			time.Sleep(time.Millisecond)
		}
		st, _ := eng.State("vm-1")
		t.Fatalf("session never reached level %d: %+v", want, st)
	}
	waitForLevel(1)

	resp, body = doJSON(t, "GET", ts.URL+"/v1/responses", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("responses: %d %s", resp.StatusCode, body)
	}
	var list struct {
		Ladder   []string               `json:"ladder"`
		Sessions []respond.SessionState `json:"sessions"`
	}
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Ladder) == 0 || len(list.Sessions) != 1 {
		t.Fatalf("responses list = %+v", list)
	}
	if s := list.Sessions[0]; s.Session != "vm-1" || s.Level != 1 || s.LevelName != "throttle(0.25)" {
		t.Fatalf("mitigated session = %+v", s)
	}

	// Operator overrides.
	resp, body = doJSON(t, "POST", ts.URL+"/v1/responses/vm-1/override",
		map[string]string{"mode": "pause"})
	var st respond.SessionState
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !st.Paused || st.Level != 0 {
		t.Fatalf("pause: %d %+v", resp.StatusCode, st)
	}
	lvl := 2
	resp, body = doJSON(t, "POST", ts.URL+"/v1/responses/vm-1/override",
		map[string]any{"mode": "force", "level": lvl})
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || st.Forced != 2 || st.Level != 2 {
		t.Fatalf("force: %d %+v", resp.StatusCode, st)
	}
	resp, body = doJSON(t, "POST", ts.URL+"/v1/responses/vm-1/override",
		map[string]string{"mode": "resume"})
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || st.Paused || st.Forced != respond.ForceNone {
		t.Fatalf("resume: %d %+v", resp.StatusCode, st)
	}

	// Bad overrides.
	for _, bad := range []any{
		map[string]string{"mode": "explode"},
		map[string]string{"mode": "force"}, // force without level
		map[string]any{"mode": "force", "level": 99},
	} {
		if resp, _ = doJSON(t, "POST", ts.URL+"/v1/responses/vm-1/override", bad); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("override %v: %d, want 400", bad, resp.StatusCode)
		}
	}

	// Closing the detection session drops the response state with it.
	if resp, _ = doJSON(t, "DELETE", ts.URL+"/v1/sessions/vm-1", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete session: %d", resp.StatusCode)
	}
	if _, ok := eng.State("vm-1"); ok {
		t.Error("engine still tracks the closed session")
	}

	// Engine counters are on /metrics.
	_, body = doJSON(t, "GET", ts.URL+"/metrics", nil)
	for _, want := range []string{
		"memdos_respond_events_total",
		"memdos_respond_throttle_actions_total",
		"memdos_respond_overrides_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
