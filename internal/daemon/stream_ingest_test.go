package daemon

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"memdos/internal/core"
	"memdos/internal/pcm"
	"memdos/internal/stream"
)

// attackSamples is ingestBody's sample shape without the request
// wrapper: AccessNum collapses halfway through (bus-locking footprint).
func attackSamples(n int, t0 float64) []pcm.Sample {
	samples := make([]pcm.Sample, n)
	for i := range samples {
		access := 100 + 3*math.Sin(float64(i)/7)
		if i >= n/2 {
			access *= 0.25
		}
		samples[i] = pcm.Sample{Time: t0 + 0.01*float64(i+1), AccessNum: access, MissNum: 10}
	}
	return samples
}

// frames encodes batches (session -> consecutive sample chunks) into
// one binary stream body, chunked chunk samples per frame.
func frames(t *testing.T, session string, samples []pcm.Sample, chunk int) []byte {
	t.Helper()
	var body []byte
	for off := 0; off < len(samples); off += chunk {
		end := off + chunk
		if end > len(samples) {
			end = len(samples)
		}
		var err error
		body, err = pcm.AppendBatch(body, session, samples[off:end])
		if err != nil {
			t.Fatal(err)
		}
	}
	return body
}

func postStream(t *testing.T, url string, body []byte, profile string) (*http.Response, []byte) {
	t.Helper()
	target := url + "/v1/ingest/stream"
	if profile != "" {
		target += "?profile=" + profile
	}
	resp, err := http.Post(target, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestStreamIngestEndToEnd(t *testing.T) {
	ts, hub := newTestDaemon(t)

	// Two sessions multiplexed over one streaming request, auto-opened.
	body := frames(t, "vm-alpha", attackSamples(600, 0), 64)
	body = append(body, frames(t, "vm-beta", attackSamples(100, 0), 64)...)
	resp, out := postStream(t, ts.URL, body, "sdsb:test")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream ingest: %d %s", resp.StatusCode, out)
	}
	var ir stream.IngestResponse
	if err := json.Unmarshal(out, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Accepted != 700 || ir.Dropped != 0 || len(ir.Errors) != 0 {
		t.Fatalf("stream response = %+v", ir)
	}
	if err := hub.Drain(); err != nil {
		t.Fatal(err)
	}
	in, ok := hub.Session("vm-alpha")
	if !ok || in.Ingested != 600 || in.Profile != "sdsb:test" {
		t.Fatalf("vm-alpha after stream = %+v", in)
	}
	if !in.AlarmActive || len(in.Incidents) == 0 {
		t.Fatalf("attack not reflected over the stream route: %+v", in)
	}
	if in, ok := hub.Session("vm-beta"); !ok || in.Ingested != 100 {
		t.Fatalf("vm-beta after stream = %+v", in)
	}
}

// TestStreamMatchesJSONDecisions is the acceptance bar of the binary
// route: the same sample stream pushed through /v1/ingest (JSON) and
// /v1/ingest/stream (binary frames) must produce identical detector
// decisions — the codec is lossless end to end, not just in unit tests.
func TestStreamMatchesJSONDecisions(t *testing.T) {
	newRecordingDaemon := func() (*httptest.Server, *stream.Hub) {
		cfg := stream.DefaultConfig()
		cfg.Policy = stream.Block
		cfg.RecordDecisions = true
		hub := stream.NewHub(cfg)
		if err := hub.RegisterProfile("raw", func() (core.Detector, error) {
			return core.NewRawThreshold(0.5)
		}); err != nil {
			t.Fatal(err)
		}
		params := core.DefaultParams()
		params.W, params.DW, params.HC = 20, 10, 2
		prof := core.Profile{AccessMean: 100, AccessStd: 5, MissMean: 10, MissStd: 2}
		if err := hub.RegisterProfile("sdsb:test", func() (core.Detector, error) {
			return core.NewSDSB(prof, params)
		}); err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(New(hub, nil))
		t.Cleanup(ts.Close)
		t.Cleanup(func() { hub.Close() })
		return ts, hub
	}
	jsonTS, jsonHub := newRecordingDaemon()
	binTS, binHub := newRecordingDaemon()

	// Full-mantissa values exercise the float packing, the attack shape
	// exercises alarm transitions; 37 deliberately does not divide the
	// sample count so the last frame is short.
	samples := attackSamples(600, 0)
	for profile, sess := range map[string]string{"raw": "vm-raw", "sdsb:test": "vm-sds"} {
		req := stream.IngestRequest{Batches: []stream.IngestBatch{
			{Session: sess, Profile: profile, Samples: samples},
		}}
		if resp, body := doJSON(t, "POST", jsonTS.URL+"/v1/ingest", req); resp.StatusCode != http.StatusOK {
			t.Fatalf("json ingest: %d %s", resp.StatusCode, body)
		}
		if resp, body := postStream(t, binTS.URL, frames(t, sess, samples, 37), profile); resp.StatusCode != http.StatusOK {
			t.Fatalf("stream ingest: %d %s", resp.StatusCode, body)
		}
	}
	if err := jsonHub.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := binHub.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, sess := range []string{"vm-raw", "vm-sds"} {
		want := jsonHub.Decisions(sess)
		got := binHub.Decisions(sess)
		if len(want) == 0 {
			t.Fatalf("%s: no decisions on the JSON route", sess)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d decisions over binary, %d over JSON", sess, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: decision %d differs: binary %+v, json %+v", sess, i, got[i], want[i])
			}
		}
	}
}

func TestStreamIngestRejectsMalformed(t *testing.T) {
	ts, hub := newTestDaemon(t)
	good := frames(t, "vm-1", attackSamples(10, 0), 10)

	cases := map[string][]byte{
		"garbage":          []byte("not a frame at all..."),
		"truncated prefix": good[:2],
		"truncated body":   good[:len(good)-3],
		"version skew": func() []byte {
			b := append([]byte(nil), good...)
			b[pcm.FramePrefixBytes] = 99 // version byte of the first frame
			return b
		}(),
		"oversize frame": {0xff, 0xff, 0xff, 0xff, 0},
	}
	for name, body := range cases {
		resp, out := postStream(t, ts.URL, body, "raw")
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", name, resp.StatusCode, out)
		}
		if !strings.Contains(string(out), "frame") {
			t.Errorf("%s: error %q does not name the frame", name, out)
		}
	}

	// A valid stream for an unknown session without ?profile= fails per
	// batch, not per stream: 400 with the session named.
	resp, out := postStream(t, ts.URL, frames(t, "ghost", attackSamples(10, 0), 10), "")
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(out), "ghost") {
		t.Errorf("ghost session stream: %d %s", resp.StatusCode, out)
	}

	// None of the failed streams may have opened the ghost session.
	if _, ok := hub.Session("ghost"); ok {
		t.Error("rejected streams opened the ghost session")
	}
}

// TestStreamIngestClosedHub: a producer still streaming when the hub
// shuts down gets 503, the signal to back off and retry elsewhere.
func TestStreamIngestClosedHub(t *testing.T) {
	ts, hub := newTestDaemon(t)
	if err := hub.Open("vm-1", "raw"); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	resp, out := postStream(t, ts.URL, frames(t, "vm-1", attackSamples(10, 0), 10), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stream to closed hub: %d %s", resp.StatusCode, out)
	}
}

// TestStreamIngestErrorCap: a stream whose every frame fails is cut off
// after maxStreamErrors instead of consuming the whole body.
func TestStreamIngestErrorCap(t *testing.T) {
	ts, _ := newTestDaemon(t)
	var body []byte
	for i := 0; i < maxStreamErrors+20; i++ {
		body = append(body, frames(t, "ghost", attackSamples(2, float64(2*i)), 2)...)
	}
	resp, out := postStream(t, ts.URL, body, "")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("error-capped stream: %d %s", resp.StatusCode, out)
	}
	var ir stream.IngestResponse
	if err := json.Unmarshal(out, &ir); err != nil {
		t.Fatal(err)
	}
	if len(ir.Errors) != maxStreamErrors {
		t.Fatalf("%d errors reported, want the cap %d", len(ir.Errors), maxStreamErrors)
	}
}

// TestGCMetricsExposed: the daemon's registry carries the runtime GC
// counters the load generator and operators read.
func TestGCMetricsExposed(t *testing.T) {
	ts, _ := newTestDaemon(t)
	resp, body := doJSON(t, "GET", ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"memdos_gc_pause_seconds_total",
		"memdos_gc_cycles_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// BenchmarkStreamIngest pushes a many-frame body through the full
// handler — frame reader, binary decode, session intern, hub submit —
// and reports per-frame cost. The decode path proper is allocation-free
// (TestDecodeBatchIntoZeroAlloc); what remains here is the HTTP
// machinery and the detector's own decision records.
func BenchmarkStreamIngest(b *testing.B) {
	cfg := stream.DefaultConfig()
	cfg.Policy = stream.Block
	cfg.Shards = 1
	hub := stream.NewHub(cfg)
	if err := hub.RegisterProfile("raw", func() (core.Detector, error) {
		return core.NewRawThreshold(0.5)
	}); err != nil {
		b.Fatal(err)
	}
	defer hub.Close()
	srv := New(hub, nil)
	if err := hub.Open("vm-1", "raw"); err != nil {
		b.Fatal(err)
	}

	const framesPerReq, samplesPerFrame = 64, 64
	samples := make([]pcm.Sample, samplesPerFrame)
	var body []byte
	for f := 0; f < framesPerReq; f++ {
		for i := range samples {
			samples[i] = pcm.Sample{
				Time:      0.01 * float64(f*samplesPerFrame+i+1),
				AccessNum: 100, MissNum: 10,
			}
		}
		var err error
		body, err = pcm.AppendBatch(body, "vm-1", samples)
		if err != nil {
			b.Fatal(err)
		}
	}

	rd := bytes.NewReader(body)
	b.ReportAllocs()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(body)
		req := httptest.NewRequest("POST", "/v1/ingest/stream", rd)
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body)
		}
	}
}
