package daemon

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"memdos/internal/core"
	"memdos/internal/dnn"
	"memdos/internal/sim"
	"memdos/internal/stream"
)

// testCascadeScorer builds a small untrained cascade with a fitted norm
// and compiles it for batched scoring, the way run() does from a saved
// model file.
func testCascadeScorer(t *testing.T, window int) *CascadeScorer {
	t.Helper()
	rng := sim.NewRNG(91)
	c, err := dnn.NewCascade(2, dnn.CompactLSTMFCNConfig, sim.NewRNG(92))
	if err != nil {
		t.Fatal(err)
	}
	windows := make([][][]float64, 24)
	for i := range windows {
		w := make([][]float64, window)
		for j := range w {
			w[j] = []float64{100 + rng.Normal(0, 8), 10 + rng.Normal(0, 1)}
		}
		windows[i] = w
	}
	if c.Norm, err = dnn.FitChannelNorm(windows); err != nil {
		t.Fatal(err)
	}
	cs, err := NewCascadeScorer(c, window, dnn.ScorerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

// The full serving path must carry cascade verdicts: samples POSTed to
// /v1/ingest assemble into windows, the scoring service classifies them,
// and /v1/sessions/{id} reports the verdict next to the detector state.
func TestEndToEndCascadeScoring(t *testing.T) {
	const window = 20
	cfg := stream.DefaultConfig()
	cfg.Shards = 1
	cfg.Policy = stream.Block
	hub := stream.NewHub(cfg)
	if err := hub.RegisterProfile("raw", func() (core.Detector, error) {
		return core.NewRawThreshold(0.5)
	}); err != nil {
		t.Fatal(err)
	}
	cs := testCascadeScorer(t, window)
	if err := hub.AttachScorer(cs, stream.ScorerConfig{Stride: window / 2}); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(hub, nil))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { hub.Close() })

	// 50 samples, window 20, stride 10: windows starting at samples
	// 1, 11, 21, 31 — four scored windows.
	resp, body := doJSON(t, http.MethodPost, ts.URL+"/v1/ingest", ingestBody("vm-dnn", "raw", 50, 0))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}
	if err := hub.Drain(); err != nil {
		t.Fatal(err)
	}

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/vm-dnn", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get session: %d %s", resp.StatusCode, body)
	}
	var in stream.SessionInfo
	if err := json.Unmarshal(body, &in); err != nil {
		t.Fatalf("decoding session: %v\n%s", err, body)
	}
	if in.Cascade == nil {
		t.Fatalf("session carries no cascade verdict:\n%s", body)
	}
	if in.Cascade.Windows != 4 {
		t.Fatalf("verdict windows = %d, want 4:\n%s", in.Cascade.Windows, body)
	}
	if in.Cascade.Attack == "" {
		t.Fatalf("verdict has no attack label:\n%s", body)
	}
	switch in.Cascade.Attack {
	case "none", "bus-lock", "cleansing":
	default:
		t.Fatalf("unknown attack label %q", in.Cascade.Attack)
	}
	if in.Cascade.App < 0 || in.Cascade.App > 1 {
		t.Fatalf("app %d out of range for a 2-app cascade", in.Cascade.App)
	}

	resp, body = doJSON(t, http.MethodGet, ts.URL+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, m := range []string{"memdos_dnn_windows_scored_total", "memdos_dnn_batches_total"} {
		if !strings.Contains(string(body), m) {
			t.Fatalf("metrics missing %s", m)
		}
	}
	st := hub.ScorerStats()
	if !st.Attached || st.WindowsScored != 4 {
		t.Fatalf("scorer stats %+v, want 4 windows scored", st)
	}
}

// NewCascadeScorer must refuse a cascade with no usable window rather
// than compiling a degenerate scorer.
func TestCascadeScorerNeedsWindow(t *testing.T) {
	c, err := dnn.NewCascade(2, dnn.CompactLSTMFCNConfig, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCascadeScorer(c, 0, dnn.ScorerOptions{}); err == nil {
		t.Fatal("accepted cascade without an intrinsic window")
	}
}

// AttackName must translate every defined class and degrade gracefully.
func TestCascadeScorerAttackNames(t *testing.T) {
	cs := &CascadeScorer{}
	want := map[int]string{
		dnn.ClassNoAttack:  "none",
		dnn.ClassBusLock:   "bus-lock",
		dnn.ClassCleansing: "cleansing",
		7:                  "class-7",
	}
	for class, name := range want {
		if got := cs.AttackName(class); got != name {
			t.Fatalf("AttackName(%d) = %q, want %q", class, got, name)
		}
	}
}
