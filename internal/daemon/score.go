package daemon

import (
	"fmt"
	"os"
	"sync"

	"memdos/internal/dnn"
)

// CascadeScorer adapts a compiled dnn.BatchScorer to the hub's
// stream.WindowScorer interface, so the serving layer can drive batched
// cascade inference without internal/stream depending on internal/dnn.
// The hub calls ScoreFlat from its single scorer goroutine; the mutex
// documents (and enforces) that the underlying arenas have one caller.
type CascadeScorer struct {
	mu sync.Mutex
	s  *dnn.BatchScorer
}

// NewCascadeScorer compiles the cascade for batched scoring. window <= 0
// uses the cascade's intrinsic (training-time) window length.
func NewCascadeScorer(c *dnn.Cascade, window int, opts dnn.ScorerOptions) (*CascadeScorer, error) {
	if window <= 0 {
		window = c.Window()
	}
	if window <= 0 {
		return nil, fmt.Errorf("daemon: cascade has no intrinsic window; pass -score-window")
	}
	s, err := c.Scorer(window, opts)
	if err != nil {
		return nil, err
	}
	return &CascadeScorer{s: s}, nil
}

// LoadCascadeScorer reads a cascade saved with dnn's Save and compiles
// it for batched scoring.
func LoadCascadeScorer(path string, window int, opts dnn.ScorerOptions) (*CascadeScorer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := dnn.LoadCascade(f)
	if err != nil {
		return nil, fmt.Errorf("daemon: loading cascade %s: %w", path, err)
	}
	return NewCascadeScorer(c, window, opts)
}

// Window implements stream.WindowScorer.
func (cs *CascadeScorer) Window() int { return cs.s.Window() }

// ScoreFlat implements stream.WindowScorer.
func (cs *CascadeScorer) ScoreFlat(n int, flat []float64, apps, attacks []int) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.s.ScoreFlat(n, flat, apps, attacks)
}

// AttackName implements stream.AttackNamer with the cascade's class
// labels.
func (cs *CascadeScorer) AttackName(class int) string {
	switch class {
	case dnn.ClassNoAttack:
		return "none"
	case dnn.ClassBusLock:
		return "bus-lock"
	case dnn.ClassCleansing:
		return "cleansing"
	default:
		return fmt.Sprintf("class-%d", class)
	}
}
