// Benchmarks regenerating every table and figure of the paper's evaluation
// (see the experiment index in DESIGN.md). Each benchmark runs the
// corresponding experiment end to end and reports its headline numbers as
// custom metrics, so `go test -bench` doubles as the reproduction harness.
//
// The figures' data series themselves can be exported with cmd/memdos.
package memdos_test

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"memdos/internal/core"
	"memdos/internal/experiments"
	"memdos/internal/pcm"
	"memdos/internal/respond"
	"memdos/internal/stream"
	"memdos/internal/workload"
)

var benchSeeds = []uint64{1, 2}

// reportCells averages the per-app medians of one detector and reports
// them as benchmark metrics.
func reportCells(b *testing.B, cells []experiments.ComparisonCell, metric string) {
	b.Helper()
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, c := range cells {
		var v float64
		switch metric {
		case "recall":
			v = c.Recall.Median
		case "specificity":
			v = c.Spec.Median
		case "delay":
			v = c.Delay
		}
		if math.IsNaN(v) {
			continue
		}
		sums[c.Detector] += v
		counts[c.Detector]++
	}
	for det, sum := range sums {
		b.ReportMetric(sum/float64(counts[det]), det+"_"+metric)
	}
}

func BenchmarkTable1Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := core.DefaultParams()
		if err := p.Validate(); err != nil {
			b.Fatal(err)
		}
	}
	p := core.DefaultParams()
	b.ReportMetric(p.Confidence(), "confidence")
	b.ReportMetric(p.MinDetectionDelayB(), "minDelayB_s")
	b.ReportMetric(p.MinDetectionDelayP(), "minDelayP_s")
}

func BenchmarkFig01KStestFalsePositives(b *testing.B) {
	var last *experiments.Fig1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig1KStestFalsePositives(600, []uint64{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.FalseAlarmRate, "fp_"+row.App)
	}
}

func BenchmarkFig02to06Traces(b *testing.B) {
	var traces []*experiments.TraceResult
	for i := 0; i < b.N; i++ {
		var err error
		traces, err = experiments.AllMeasurementTraces(1)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline shape numbers: mean AccessNum retention under bus locking
	// and mean MissNum inflation under cleansing, across the ten apps.
	var drop, rise float64
	var nDrop, nRise int
	for _, tr := range traces {
		switch tr.Mode {
		case experiments.BusLock:
			drop += tr.DuringMean / tr.BeforeMean
			nDrop++
		case experiments.Cleansing:
			rise += tr.DuringMean / tr.BeforeMean
			nRise++
		}
	}
	b.ReportMetric(drop/float64(nDrop), "buslock_access_retention")
	b.ReportMetric(rise/float64(nRise), "cleansing_miss_inflation")
}

func BenchmarkFig07SDSBExample(b *testing.B) {
	var res *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig7SDSBExample()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.AlarmWindow-res.AttackWindow), "alarm_after_windows")
}

func BenchmarkFig08SDSPExample(b *testing.B) {
	var res *experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig8SDSPExample()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.NormalPeriod, "normal_period_windows")
	b.ReportMetric(float64(res.AlarmWindow-res.AttackWindow), "alarm_after_windows")
}

// scenario1 runs the Figs. 11-13 comparison for one attack over all apps.
func scenario1(b *testing.B, mode experiments.AttackMode, metric string) {
	b.Helper()
	apps := workload.Abbrevs()
	var cells []experiments.ComparisonCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.CompareDetectors(apps, experiments.StandardFactories(true), mode, false, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCells(b, cells, metric)
}

func BenchmarkFig11RecallBusLock(b *testing.B)      { scenario1(b, experiments.BusLock, "recall") }
func BenchmarkFig11RecallCleansing(b *testing.B)    { scenario1(b, experiments.Cleansing, "recall") }
func BenchmarkFig12SpecificityBusLock(b *testing.B) { scenario1(b, experiments.BusLock, "specificity") }
func BenchmarkFig12SpecificityCleansing(b *testing.B) {
	scenario1(b, experiments.Cleansing, "specificity")
}
func BenchmarkFig13DelayBusLock(b *testing.B)   { scenario1(b, experiments.BusLock, "delay") }
func BenchmarkFig13DelayCleansing(b *testing.B) { scenario1(b, experiments.Cleansing, "delay") }

// BenchmarkFig11to13PeriodicApps adds the stand-alone SDS/B and SDS/P
// detectors evaluated on the periodic applications.
func BenchmarkFig11to13PeriodicApps(b *testing.B) {
	var cells []experiments.ComparisonCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.CompareDetectors(workload.PeriodicAbbrevs(),
			experiments.PeriodicFactories(false), experiments.BusLock, false, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCells(b, cells, "specificity")
	reportCells(b, cells, "delay")
}

func BenchmarkFig14Overhead(b *testing.B) {
	var rows []experiments.Fig14Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig14Overhead(workload.Abbrevs())
		if err != nil {
			b.Fatal(err)
		}
	}
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, r := range rows {
		sums[r.Detector] += r.Normalized
		counts[r.Detector]++
	}
	for det, sum := range sums {
		b.ReportMetric(sum/float64(counts[det]), det+"_normalized")
	}
}

// scenario2 runs the Figs. 15-16 adaptive-attack comparison.
func scenario2(b *testing.B, mode experiments.AttackMode, metric string) {
	b.Helper()
	apps := workload.Abbrevs()
	var cells []experiments.ComparisonCell
	for i := 0; i < b.N; i++ {
		var err error
		cells, err = experiments.CompareDetectors(apps, experiments.StandardFactories(true), mode, true, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportCells(b, cells, metric)
}

func BenchmarkFig15Recall2BusLock(b *testing.B)   { scenario2(b, experiments.BusLock, "recall") }
func BenchmarkFig15Recall2Cleansing(b *testing.B) { scenario2(b, experiments.Cleansing, "recall") }
func BenchmarkFig16Specificity2BusLock(b *testing.B) {
	scenario2(b, experiments.BusLock, "specificity")
}
func BenchmarkFig16Specificity2Cleansing(b *testing.B) {
	scenario2(b, experiments.Cleansing, "specificity")
}

// reportSweep exposes a sweep's endpoints as metrics.
func reportSweep(b *testing.B, pts []experiments.SweepPoint) {
	b.Helper()
	if len(pts) == 0 {
		return
	}
	first, last := pts[0], pts[len(pts)-1]
	b.ReportMetric(first.Delay, "delay_at_min")
	b.ReportMetric(last.Delay, "delay_at_max")
	b.ReportMetric(first.Specificity, "spec_at_min")
	b.ReportMetric(last.Specificity, "spec_at_max")
}

func BenchmarkFig17AlphaSweep(b *testing.B) {
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig17AlphaSweep("KM", []float64{0.1, 0.2, 0.4, 0.6, 0.8, 1.0}, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, pts)
}

func BenchmarkFig18KSweep(b *testing.B) {
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig18KSweep("KM", []float64{1.1, 1.125, 1.2, 1.5, 2.0}, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, pts)
}

func BenchmarkFig19WSweepSDS(b *testing.B) {
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig19WSweep("KM", []int{100, 200, 400, 600, 1000}, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, pts)
}

func BenchmarkFig20WSweepDNN(b *testing.B) {
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig20WSweepDNN([]int{100, 200, 400}, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, pts)
}

func BenchmarkFig21DWSweepSDS(b *testing.B) {
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig21DWSweep("KM", []int{20, 50, 100, 200}, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, pts)
}

func BenchmarkFig22DWSweepDNN(b *testing.B) {
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig22DWSweepDNN([]int{20, 50, 100, 200}, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, pts)
}

func BenchmarkFig23WPSweep(b *testing.B) {
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig23WPSweep("FN", []int{2, 3, 4, 6}, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, pts)
}

func BenchmarkFig24DWPSweep(b *testing.B) {
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig24DWPSweep("FN", []int{5, 10, 15, 25}, benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSweep(b, pts)
}

func BenchmarkAblationRawThreshold(b *testing.B) {
	var accs map[string]experiments.Accuracy
	for i := 0; i < b.N; i++ {
		var err error
		accs, err = experiments.AblationRawThreshold("TS", benchSeeds[:1])
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(accs["naive-coarse"].Recall, "naive_coarse_recall")
	b.ReportMetric(accs["naive-fine"].Specificity, "naive_fine_specificity")
	b.ReportMetric(accs["SDS"].Specificity, "sds_specificity")
}

func BenchmarkAblationPeriodEstimators(b *testing.B) {
	var dft, acf, both float64
	for i := 0; i < b.N; i++ {
		var err error
		dft, acf, both, err = experiments.PeriodEstimatorAblation("FN", benchSeeds)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dft, "dft_only_err")
	b.ReportMetric(acf, "acf_only_err")
	b.ReportMetric(both, "dft_acf_err")
}

// benchStreamIngest drives the always-on detection hub with nSessions
// concurrent producers, each feeding an SDS/B pipeline, and reports
// end-to-end throughput in samples/sec (ingest through detector push).
func benchStreamIngest(b *testing.B, nSessions int) {
	cfg := stream.DefaultConfig()
	cfg.Policy = stream.Block // measure detector throughput, not drops
	cfg.QueueCap = 1 << 14
	hub := stream.NewHub(cfg)
	defer hub.Close()

	params := core.DefaultParams()
	params.W, params.DW = 200, 50
	prof := core.Profile{AccessMean: 100, AccessStd: 5, MissMean: 10, MissStd: 2}
	if err := hub.RegisterProfile("sdsb", func() (core.Detector, error) {
		return core.NewSDSB(prof, params)
	}); err != nil {
		b.Fatal(err)
	}
	const batchLen = 256
	batch := make([]pcm.Sample, batchLen)
	for i := range batch {
		batch[i] = pcm.Sample{Time: 0.01 * float64(i+1), AccessNum: 100, MissNum: 10}
	}
	ids := make([]string, nSessions)
	for i := range ids {
		ids[i] = fmt.Sprintf("vm-%03d", i)
		if err := hub.Open(ids[i], "sdsb"); err != nil {
			b.Fatal(err)
		}
	}

	perSession := (b.N + nSessions - 1) / nSessions
	b.ResetTimer()
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for sent := 0; sent < perSession; sent += batchLen {
				if _, err := hub.Ingest(id, batch); err != nil {
					b.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if err := hub.Drain(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	total := float64(perSession+batchLen-1) / batchLen * batchLen * float64(nSessions)
	b.ReportMetric(total/b.Elapsed().Seconds(), "samples/sec")
}

// BenchmarkStreamIngest measures the internal/stream hub at increasing
// tenant counts — the serving-path cost of the paper's "always-on
// detection on every hypervisor" deployment model.
func BenchmarkStreamIngest(b *testing.B) {
	for _, n := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", n), func(b *testing.B) {
			benchStreamIngest(b, n)
		})
	}
}

func BenchmarkAblationMicrosimVsFast(b *testing.B) {
	var micro, fast float64
	for i := 0; i < b.N; i++ {
		var err error
		micro, fast, err = experiments.MicrosimCalibration()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(micro, "microsim_inflation")
	b.ReportMetric(fast, "fastmodel_inflation")
}

// respondBenchActuator hands each throttle application to the benchmark
// loop so it can block until the action has landed.
type respondBenchActuator struct{ applied chan float64 }

func (a *respondBenchActuator) Throttle(_ string, duty float64) error {
	a.applied <- duty
	return nil
}
func (a *respondBenchActuator) LimitBandwidth(string, float64) error { return nil }

func (a *respondBenchActuator) Partition(string, bool) error { return nil }
func (a *respondBenchActuator) Migrate(string) (respond.MigrateResult, error) {
	return respond.MigrateResult{}, nil
}

// respondBenchDetector alarms exactly when MissNum is anomalous, so every
// benchmark sample is one deterministic alarm transition.
type respondBenchDetector struct{}

func (respondBenchDetector) Name() string { return "flip" }
func (respondBenchDetector) Push(s pcm.Sample) []core.Decision {
	return []core.Decision{{Time: s.Time, Alarm: s.MissNum > 50}}
}
func (respondBenchDetector) Overhead() float64 { return 0 }

// BenchmarkRespondLoop measures the end-to-end closed-loop cycle of the
// mitigation path: sample ingest through the hub's detector, alarm
// fan-out, the respond engine's policy step and the actuator call — then
// the clear, hysteresis tick and release. ns/op is the full
// alarm->throttle->clear->release round trip.
func BenchmarkRespondLoop(b *testing.B) {
	hub := stream.NewHub(stream.Config{Shards: 1, QueueCap: 1 << 12, ShardBuffer: 64, Policy: stream.Block})
	defer hub.Close()
	if err := hub.RegisterProfile("flip", func() (core.Detector, error) {
		return respondBenchDetector{}, nil
	}); err != nil {
		b.Fatal(err)
	}
	if err := hub.Open("vm-1", "flip"); err != nil {
		b.Fatal(err)
	}
	act := &respondBenchActuator{applied: make(chan float64, 1)}
	cfg := respond.Config{ThrottleDuties: []float64{0.5}, EscalateAfter: 1e9, ClearAfter: 1e-9}
	eng, err := respond.New(cfg, act)
	if err != nil {
		b.Fatal(err)
	}
	stop := respond.Attach(hub, eng, 64)
	defer stop()

	raise := []pcm.Sample{{AccessNum: 100, MissNum: 100}}
	clear := []pcm.Sample{{AccessNum: 100, MissNum: 10}}
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now++
		raise[0].Time = now
		if _, err := hub.Ingest("vm-1", raise); err != nil {
			b.Fatal(err)
		}
		if d := <-act.applied; d != 0.5 {
			b.Fatalf("applied duty %v, want 0.5", d)
		}
		now++
		clear[0].Time = now
		if _, err := hub.Ingest("vm-1", clear); err != nil {
			b.Fatal(err)
		}
		// The attach pump is asynchronous: wait until the engine has seen
		// the clear before ticking the hysteresis forward.
		for {
			if st, ok := eng.State("vm-1"); ok && !st.AlarmActive {
				break
			}
			runtime.Gosched()
		}
		now++
		eng.Tick(now)
		if d := <-act.applied; d != 0 {
			b.Fatalf("release duty %v, want 0", d)
		}
	}
}
